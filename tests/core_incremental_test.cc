/**
 * @file
 * Tests of the core steady-state mining engine (core::SteadyStateMiner
 * and its TraceFinder wiring):
 *
 *  - the rolling fast path's zero-allocation contract (this TU owns
 *    the counting allocator — see support/counting_allocator.h);
 *  - verified adoption: Probe only ever returns results for a window
 *    that compares token-for-token equal;
 *  - bit-identity of the whole pipeline with incremental mining on vs
 *    off, over every bundled application, single-node and replicated
 *    (stream digests);
 *  - the per-tier counters threaded through AnalysisJob → FinderStats
 *    → ExperimentResult.
 */
#include "support/counting_allocator.h"

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "api/frontend.h"
#include "apps/cfd.h"
#include "apps/flexflow.h"
#include "apps/htr.h"
#include "apps/s3d.h"
#include "apps/torchswe.h"
#include "core/apophenia.h"
#include "core/config.h"
#include "core/finder.h"
#include "core/history.h"
#include "core/steady_miner.h"
#include "sim/harness.h"

namespace apo {
namespace {

core::ApopheniaConfig MinerConfig()
{
    core::ApopheniaConfig config;
    config.min_trace_length = 8;
    config.batchsize = 4096;
    config.multi_scale_factor = 64;
    return config;
}

std::vector<rt::TokenHash> PeriodicSlice(std::size_t n,
                                         std::uint64_t period,
                                         std::uint64_t base = 0)
{
    std::vector<rt::TokenHash> s(n);
    for (std::size_t i = 0; i < n; ++i) {
        s[i] = base + (i % period);
    }
    return s;
}

TEST(SteadyStateMiner, MineMatchesMineSliceAndMemoizes)
{
    const core::ApopheniaConfig config = MinerConfig();
    core::SteadyStateMiner miner(config);
    const std::vector<rt::TokenHash> slice = PeriodicSlice(512, 16);

    core::MiningPath path = core::MiningPath::kNone;
    const auto mined = miner.Mine(slice, &path);
    ASSERT_NE(mined, nullptr);
    EXPECT_EQ(path, core::MiningPath::kFull);  // nothing to reuse yet

    const std::vector<core::CandidateTrace> want =
        core::MineSlice(slice, config);
    ASSERT_EQ(mined->size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ((*mined)[i].tokens, want[i].tokens);
        EXPECT_EQ((*mined)[i].occurrences, want[i].occurrences);
    }

    // The result was memoized: an identical window now probes hot, and
    // adoption shares the very same candidate set (no copy).
    const auto hit = miner.Probe(std::span<const rt::TokenHash>(slice));
    EXPECT_EQ(hit.get(), mined.get());
    // The ring learned the window's dominant period — the winning
    // (longest) repeat's occurrence spacing, a multiple of the
    // stream's base period.
    const std::vector<std::size_t> periods = miner.RingPeriods();
    ASSERT_EQ(periods.size(), 1u);
    EXPECT_GT(periods.front(), 0u);
    EXPECT_EQ(periods.front() % 16, 0u);

    const core::SteadyStateMiner::Stats stats = miner.Snapshot();
    EXPECT_EQ(stats.full_rebuilds, 1u);
    EXPECT_EQ(stats.memoized, 1u);
    EXPECT_EQ(stats.fast_path_hits, 1u);
}

TEST(SteadyStateMiner, ProbeOnlyAdoptsVerifiedEqualWindows)
{
    const core::ApopheniaConfig config = MinerConfig();
    core::SteadyStateMiner miner(config);
    const std::vector<rt::TokenHash> slice = PeriodicSlice(256, 8);
    core::MiningPath path = core::MiningPath::kNone;
    miner.Mine(slice, &path);

    std::vector<rt::TokenHash> other = slice;
    other.back() ^= 1;  // same length, different content
    EXPECT_EQ(miner.Probe(std::span<const rt::TokenHash>(other)), nullptr);
    std::vector<rt::TokenHash> shorter(slice.begin(), slice.end() - 1);
    EXPECT_EQ(miner.Probe(std::span<const rt::TokenHash>(shorter)),
              nullptr);
    EXPECT_NE(miner.Probe(std::span<const rt::TokenHash>(slice)), nullptr);
}

TEST(SteadyStateMiner, FastPathProbePerformsZeroAllocations)
{
    const core::ApopheniaConfig config = MinerConfig();
    core::SteadyStateMiner miner(config);
    const std::vector<rt::TokenHash> slice = PeriodicSlice(4096, 64);
    const std::vector<rt::TokenHash> cold = PeriodicSlice(4096, 64, 900);
    core::MiningPath path = core::MiningPath::kNone;
    miner.Mine(slice, &path);

    // The steady state: thousands of windows served by the fast path.
    // The contract is zero heap allocations per probed window — hits
    // AND misses (a miss must not allocate either; it falls through to
    // the mining tiers which own their scratch).
    const std::span<const rt::TokenHash> hot(slice);
    const std::span<const rt::TokenHash> miss(cold);
    std::shared_ptr<const std::vector<core::CandidateTrace>> last;
    bool all_hit = true;
    bool any_miss_hit = false;
    const std::uint64_t before = support::AllocationCount();
    for (int i = 0; i < 1000; ++i) {
        last = miner.Probe(hot);
        all_hit = all_hit && last != nullptr;
        any_miss_hit = any_miss_hit || miner.Probe(miss) != nullptr;
    }
    const std::uint64_t allocations =
        support::AllocationCount() - before;
    EXPECT_EQ(allocations, 0u) << "fast-path probe allocated";
    EXPECT_TRUE(all_hit);
    EXPECT_FALSE(any_miss_hit);
}

TEST(SteadyStateMiner, SnapshotProbeHitsWithoutMaterializing)
{
    const core::ApopheniaConfig config = MinerConfig();
    core::SteadyStateMiner miner(config);

    // A window split across history blocks: the snapshot probe walks
    // the block spans in place.
    core::HistoryRing ring(512, 64);
    const std::vector<rt::TokenHash> slice = PeriodicSlice(500, 10);
    for (const rt::TokenHash token : slice) {
        ring.Append(token);
    }
    core::HistorySnapshot snapshot;
    ring.SnapshotLastN(500, snapshot);
    ASSERT_GT(snapshot.NumSpans(), 1u);

    core::MiningPath path = core::MiningPath::kNone;
    const auto mined = miner.Mine(slice, &path);
    const std::uint64_t before = support::AllocationCount();
    const auto hit = miner.Probe(snapshot);
    const std::uint64_t allocations =
        support::AllocationCount() - before;
    EXPECT_EQ(hit.get(), mined.get());
    EXPECT_EQ(allocations, 0u) << "snapshot probe allocated";

    // And a snapshot that differs in its last block misses.
    ring.Append(999);
    core::HistorySnapshot moved;
    ring.SnapshotLastN(500, moved);
    EXPECT_EQ(miner.Probe(moved), nullptr);
}

TEST(SteadyStateMiner, MemoizeSeedsTheFastPathFromExternalResults)
{
    const core::ApopheniaConfig config = MinerConfig();
    core::SteadyStateMiner miner(config);
    const std::vector<rt::TokenHash> slice = PeriodicSlice(256, 8);
    const auto external =
        std::make_shared<const std::vector<core::CandidateTrace>>(
            core::MineSlice(slice, config));

    // A shared-cache adoption memoizes without mining locally; the
    // next identical window fast-paths straight to the adopted set.
    miner.Memoize(std::span<const rt::TokenHash>(slice), external);
    const auto hit = miner.Probe(std::span<const rt::TokenHash>(slice));
    EXPECT_EQ(hit.get(), external.get());
    const core::SteadyStateMiner::Stats stats = miner.Snapshot();
    EXPECT_EQ(stats.memoized, 1u);
    EXPECT_EQ(stats.full_rebuilds, 0u);
}

TEST(SteadyStateMiner, RingHoldsOneSlotPerWindowShapeAndEvictsFifo)
{
    core::ApopheniaConfig config = MinerConfig();
    config.incremental_ring_windows = 2;
    core::SteadyStateMiner miner(config);
    core::MiningPath path = core::MiningPath::kNone;

    const std::vector<rt::TokenHash> a = PeriodicSlice(128, 8);
    const std::vector<rt::TokenHash> b = PeriodicSlice(256, 8);
    const std::vector<rt::TokenHash> c = PeriodicSlice(384, 8);
    miner.Mine(a, &path);
    miner.Mine(b, &path);
    // Same shape as `a`: replaces a's slot rather than evicting.
    const std::vector<rt::TokenHash> a2 = PeriodicSlice(128, 4);
    miner.Mine(a2, &path);
    EXPECT_EQ(miner.Probe(std::span<const rt::TokenHash>(b)) != nullptr,
              true);
    EXPECT_NE(miner.Probe(std::span<const rt::TokenHash>(a2)), nullptr);
    EXPECT_EQ(miner.Probe(std::span<const rt::TokenHash>(a)), nullptr);
    // A third shape evicts the oldest slot (FIFO) at capacity 2.
    miner.Mine(c, &path);
    EXPECT_NE(miner.Probe(std::span<const rt::TokenHash>(c)), nullptr);
    EXPECT_EQ(miner.RingPeriods().size(), 2u);
}

// ---------------------------------------------------------------------------
// Pipeline bit-identity: incremental mining on vs off.

apps::MachineConfig SmallMachine()
{
    apps::MachineConfig m;
    m.nodes = 2;
    m.gpus_per_node = 2;
    return m;
}

core::ApopheniaConfig SmallConfig(bool incremental)
{
    core::ApopheniaConfig config;
    config.min_trace_length = 10;
    config.batchsize = 1500;
    config.multi_scale_factor = 100;
    config.incremental_mining = incremental;
    return config;
}

template <typename App, typename Options>
std::unique_ptr<rt::Runtime> RunApp(Options options, std::size_t iters,
                                    bool incremental)
{
    auto runtime = std::make_unique<rt::Runtime>();
    core::Apophenia fe(*runtime, SmallConfig(incremental));
    api::Frontend& sink = fe;
    App app(options);
    app.Setup(sink);
    for (std::size_t i = 0; i < iters; ++i) {
        app.Iteration(sink, i, false);
    }
    sink.Flush();
    return runtime;
}

template <typename App, typename Options>
void ExpectOnOffIdentical(Options options, std::size_t iters)
{
    const auto on = RunApp<App>(options, iters, true);
    const auto off = RunApp<App>(options, iters, false);
    ASSERT_EQ(on->Log().size(), off->Log().size());
    for (std::size_t i = 0; i < on->Log().size(); ++i) {
        ASSERT_EQ(on->Log()[i].token, off->Log()[i].token) << "op " << i;
        ASSERT_EQ(on->Log()[i].mode, off->Log()[i].mode) << "op " << i;
        ASSERT_EQ(on->Log()[i].trace, off->Log()[i].trace) << "op " << i;
        ASSERT_EQ(on->Log()[i].dependences, off->Log()[i].dependences)
            << "op " << i;
    }
    EXPECT_EQ(on->Stats().trace_replays, off->Stats().trace_replays);
    EXPECT_EQ(on->Stats().trace_mismatches, 0u);
}

TEST(IncrementalOnOff, S3dDecisionsAreByteIdentical)
{
    ExpectOnOffIdentical<apps::S3dApplication>(
        apps::S3dOptions{.machine = SmallMachine()}, 60);
}

TEST(IncrementalOnOff, HtrDecisionsAreByteIdentical)
{
    ExpectOnOffIdentical<apps::HtrApplication>(
        apps::HtrOptions{.machine = SmallMachine()}, 50);
}

TEST(IncrementalOnOff, CfdDecisionsAreByteIdentical)
{
    ExpectOnOffIdentical<apps::CfdApplication>(
        apps::CfdOptions{.machine = SmallMachine()}, 120);
}

TEST(IncrementalOnOff, TorchSweDecisionsAreByteIdentical)
{
    apps::TorchSweOptions options{.machine = SmallMachine()};
    options.allocation_pool_budget = 150;
    ExpectOnOffIdentical<apps::TorchSweApplication>(options, 80);
}

TEST(IncrementalOnOff, FlexFlowDecisionsAreByteIdentical)
{
    ExpectOnOffIdentical<apps::FlexFlowApplication>(
        apps::FlexFlowOptions{.machine = SmallMachine()}, 40);
}

sim::ExperimentResult RunReplicated(bool incremental)
{
    sim::ExperimentOptions options;
    options.mode = sim::TracingMode::kAuto;
    options.iterations = 50;
    options.machine = SmallMachine();
    options.auto_config = SmallConfig(incremental);
    options.replicas = 3;
    options.replication.seed = 7;
    options.log_mode = sim::LogMode::kStreaming;
    apps::S3dApplication app(
        apps::S3dOptions{.machine = options.machine});
    return sim::RunExperiment(app, options);
}

TEST(IncrementalOnOff, ReplicatedStreamDigestsAreUnchanged)
{
    const sim::ExperimentResult on = RunReplicated(true);
    const sim::ExperimentResult off = RunReplicated(false);
    EXPECT_TRUE(on.streams_identical);
    EXPECT_TRUE(off.streams_identical);
    EXPECT_EQ(on.stream_digest, off.stream_digest);
    EXPECT_EQ(on.stream_digest_ops, off.stream_digest_ops);
    EXPECT_EQ(on.total_tasks, off.total_tasks);
    EXPECT_EQ(on.warmup_iterations, off.warmup_iterations);
    EXPECT_DOUBLE_EQ(on.makespan_us, off.makespan_us);
    EXPECT_EQ(on.replayed_fraction, off.replayed_fraction);
    // The engine actually engaged (and is off when disabled).
    EXPECT_GT(on.mining_fast_path_hits + on.mining_repairs +
                  on.mining_full,
              0u);
    EXPECT_EQ(off.mining_fast_path_hits, 0u);
    EXPECT_EQ(off.mining_repairs, 0u);
    EXPECT_EQ(off.mining_full, 0u);
}

TEST(IncrementalOnOff, TierCountersAccountForEveryIngestedJob)
{
    sim::ExperimentOptions options;
    options.mode = sim::TracingMode::kAuto;
    options.iterations = 60;
    options.machine = SmallMachine();
    options.auto_config = SmallConfig(true);
    apps::S3dApplication app(
        apps::S3dOptions{.machine = options.machine});
    const sim::ExperimentResult result = sim::RunExperiment(app, options);

    // Single node, no shared cache: every ingested job was served by
    // exactly one tier.
    EXPECT_EQ(result.mining_fast_path_hits + result.mining_repairs +
                  result.mining_full,
              result.apophenia_stats.jobs_ingested);
    ASSERT_GT(result.apophenia_stats.jobs_ingested, 0u);
}

TEST(IncrementalOnOff, SteadyStreamIsServedByTheFastPath)
{
    // The tentpole scenario: a periodic stream whose period divides
    // the analysis stride, so every batched window after the first is
    // content-identical. All but the first job must ride the rolling
    // fast path — no suffix work, no hashing, no materialization.
    core::ApopheniaConfig config;
    config.min_trace_length = 8;
    config.batchsize = 256;
    config.identifier_algorithm = core::IdentifierAlgorithm::kBatched;
    support::InlineExecutor executor;
    core::TraceFinder finder(config, executor);
    for (std::uint64_t i = 0; i < 256 * 20; ++i) {
        finder.Observe(i % 8, i);
        while (finder.OldestJobDone()) {
            finder.WaitOldestJob();
            finder.ReleaseOldestJob();
        }
    }
    while (finder.PendingJobCount() > 0) {
        finder.WaitOldestJob();
        finder.ReleaseOldestJob();
    }
    const core::FinderStats& stats = finder.Stats();
    ASSERT_EQ(stats.jobs_launched, 20u);
    EXPECT_EQ(stats.mining_fast_path_hits + stats.mining_repairs +
                  stats.mining_full,
              stats.jobs_launched);
    EXPECT_EQ(stats.mining_fast_path_hits, stats.jobs_launched - 1);
    ASSERT_NE(finder.Steady(), nullptr);
    EXPECT_EQ(finder.Steady()->Snapshot().fast_path_hits,
              stats.jobs_launched - 1);
}

}  // namespace
}  // namespace apo
