/**
 * @file
 * Randomized differential testing of the whole front-end.
 *
 * A seeded generator builds random programs that combine everything at
 * once: nested loop structures with random bodies, dynamic region
 * allocation and destruction (allocator recycling), partitioned
 * regions with parent- and child-level accesses, reductions with
 * mixed operators, fills/copies, untraceable operations, and noise.
 * Each program runs through Apophenia and untraced; the forwarded
 * stream and the dependence graph must be identical, under several
 * Apophenia configurations, for every seed.
 *
 * This is the repository's broadest safety net: any replayer
 * bookkeeping bug (wrong flush order, stale pointer, bad template
 * boundary) shows up as a diff here long before it would be
 * diagnosable in an application.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include <unordered_map>

#include "core/apophenia.h"
#include "fault/checkpoint.h"
#include "runtime/graph.h"
#include "runtime/runtime.h"
#include "sim/cluster.h"
#include "support/executor.h"
#include "support/rng.h"
#include "svc/service.h"

namespace apo {
namespace {

/** A random but *deterministic per seed* program issuing structured,
 * partially repetitive task streams. */
class RandomProgram {
  public:
    explicit RandomProgram(std::uint64_t seed) : seed_(seed) {}

    /** Issue the program against a front-end-ish target (Apophenia or
     * the runtime itself through a thin adapter). */
    template <typename Target>
    void Run(Target& target)
    {
        support::Rng rng(seed_);
        // Long-lived regions plus a partitioned grid.
        std::vector<rt::RegionId> regions;
        for (int i = 0; i < 6; ++i) {
            regions.push_back(target.CreateRegion());
        }
        const rt::RegionId grid = target.CreateRegion();
        const auto shards = target.PartitionRegion(grid, 4);

        // Random loop nest: outer phases, each with its own body.
        const int phases = static_cast<int>(rng.UniformInt(1, 3));
        for (int phase = 0; phase < phases; ++phase) {
            const int body = static_cast<int>(rng.UniformInt(3, 12));
            const int iters = static_cast<int>(rng.UniformInt(10, 60));
            // A fixed random body for this phase (repetition!).
            support::Rng body_rng(seed_ * 131 + phase);
            std::vector<rt::TaskLaunch> body_tasks;
            for (int b = 0; b < body; ++b) {
                body_tasks.push_back(
                    RandomTask(body_rng, regions, shards, grid, phase));
            }
            for (int it = 0; it < iters; ++it) {
                for (const auto& t : body_tasks) {
                    target.ExecuteTask(t);
                }
                // Occasional irregularities.
                if (rng.Bernoulli(0.1)) {
                    target.ExecuteTask(
                        RandomTask(rng, regions, shards, grid, phase));
                }
                if (rng.Bernoulli(0.05)) {
                    rt::TaskLaunch io = RandomTask(rng, regions, shards,
                                                   grid, phase);
                    io.traceable = false;
                    target.ExecuteTask(io);
                }
                // Dynamic region churn: cuPyNumeric-style scratch.
                if (rng.Bernoulli(0.15)) {
                    const rt::RegionId scratch = target.CreateRegion();
                    target.ExecuteTask(rt::TaskLaunch{
                        777,
                        {{scratch, 0, rt::Privilege::kWriteDiscard, 0},
                         {regions[0], 0, rt::Privilege::kReadOnly, 0}}});
                    target.DestroyRegion(scratch);
                }
            }
        }
    }

  private:
    static rt::TaskLaunch RandomTask(
        support::Rng& rng, const std::vector<rt::RegionId>& regions,
        const std::vector<rt::RegionId>& shards, rt::RegionId grid,
        int phase)
    {
        rt::TaskLaunch t;
        t.task = rng.UniformInt(1, 30) + 1000ull * phase;
        const int reqs = static_cast<int>(rng.UniformInt(1, 3));
        for (int q = 0; q < reqs; ++q) {
            rt::RegionRequirement req;
            const auto pick = rng.UniformInt(0, 9);
            if (pick < 6) {
                req.region = regions[pick % regions.size()];
            } else if (pick < 9) {
                req.region = shards[pick - 6];
            } else {
                req.region = grid;  // parent-level access
            }
            req.field = static_cast<rt::FieldId>(rng.UniformInt(0, 1));
            req.privilege =
                static_cast<rt::Privilege>(rng.UniformInt(0, 3));
            req.redop = req.privilege == rt::Privilege::kReduce
                            ? static_cast<rt::ReductionOpId>(
                                  rng.UniformInt(1, 2))
                            : 0;
            t.requirements.push_back(req);
        }
        t.shard = static_cast<std::uint32_t>(rng.UniformInt(0, 3));
        if (rng.Bernoulli(0.3)) {
            // Occasionally a fill or copy instead of a task.
            return rng.Bernoulli(0.5)
                       ? rt::FillLaunch(t.requirements[0].region,
                                        t.requirements[0].field, t.shard)
                       : rt::CopyLaunch(
                             t.requirements[0].region,
                             t.requirements[0].field,
                             regions[rng.UniformInt(
                                 0, regions.size() - 1)],
                             0, t.shard);
        }
        return t;
    }

    std::uint64_t seed_;
};

/** Adapter so RandomProgram can also drive the bare runtime. */
class BareTarget {
  public:
    explicit BareTarget(rt::Runtime& rt) : rt_(&rt) {}
    rt::RegionId CreateRegion() { return rt_->CreateRegion(); }
    void DestroyRegion(rt::RegionId r) { rt_->DestroyRegion(r); }
    std::vector<rt::RegionId> PartitionRegion(rt::RegionId p,
                                              std::size_t n)
    {
        return rt_->PartitionRegion(p, n);
    }
    void ExecuteTask(const rt::TaskLaunch& t) { rt_->ExecuteTask(t); }

  private:
    rt::Runtime* rt_;
};

struct FuzzCase {
    std::uint64_t seed;
    std::size_t min_trace_length;
    std::size_t max_trace_length;
    std::size_t batchsize;
};

class DifferentialFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(DifferentialFuzz, TracedEqualsUntraced)
{
    const FuzzCase fuzz = GetParam();
    core::ApopheniaConfig config;
    config.min_trace_length = fuzz.min_trace_length;
    config.max_trace_length = fuzz.max_trace_length;
    config.batchsize = fuzz.batchsize;
    config.multi_scale_factor =
        std::max<std::size_t>(fuzz.batchsize / 16, 8);

    rt::Runtime traced_rt;
    core::Apophenia fe(traced_rt, config);
    RandomProgram(fuzz.seed).Run(fe);
    fe.Flush();

    rt::Runtime bare_rt;
    BareTarget bare(bare_rt);
    RandomProgram(fuzz.seed).Run(bare);

    ASSERT_EQ(traced_rt.Log().size(), bare_rt.Log().size());
    for (std::size_t i = 0; i < traced_rt.Log().size(); ++i) {
        ASSERT_EQ(traced_rt.Log()[i].token, bare_rt.Log()[i].token)
            << "stream diverged at op " << i << " (seed " << fuzz.seed
            << ")";
        ASSERT_EQ(traced_rt.Log()[i].dependences,
                  bare_rt.Log()[i].dependences)
            << "graph diverged at op " << i << " (seed " << fuzz.seed
            << ")";
    }
    // No mismatches may ever be raised by automatic tracing.
    EXPECT_EQ(traced_rt.Stats().trace_mismatches, 0u);
    // Untraceable operations never appear inside traces.
    for (const auto& op : traced_rt.Log()) {
        if (!op.launch.traceable) {
            ASSERT_EQ(op.trace, rt::kNoTrace);
        }
    }
}

TEST_P(DifferentialFuzz, PooledEagerDrainMatchesInlineDecisions)
{
    // The zero-copy pipeline's determinism contract: with eager-drain
    // ingestion, a pooled executor (jobs actually mined on background
    // worker threads) must reproduce the InlineExecutor's replay
    // decisions exactly — same analysis modes, same trace ids, at the
    // same stream positions.
    const FuzzCase fuzz = GetParam();
    core::ApopheniaConfig config;
    config.min_trace_length = fuzz.min_trace_length;
    config.max_trace_length = fuzz.max_trace_length;
    config.batchsize = fuzz.batchsize;
    config.multi_scale_factor =
        std::max<std::size_t>(fuzz.batchsize / 16, 8);

    rt::Runtime inline_rt;
    core::Apophenia inline_fe(inline_rt, config);
    RandomProgram(fuzz.seed).Run(inline_fe);
    inline_fe.Flush();

    core::ApopheniaConfig pooled_config = config;
    pooled_config.ingest_mode = core::IngestMode::kEagerDrain;
    rt::Runtime pooled_rt;
    support::PooledExecutor pool(3);
    core::Apophenia pooled_fe(pooled_rt, pooled_config, &pool);
    RandomProgram(fuzz.seed).Run(pooled_fe);
    pooled_fe.Flush();

    ASSERT_EQ(pooled_rt.Log().size(), inline_rt.Log().size());
    for (std::size_t i = 0; i < pooled_rt.Log().size(); ++i) {
        ASSERT_EQ(pooled_rt.Log()[i].token, inline_rt.Log()[i].token)
            << "stream diverged at op " << i << " (seed " << fuzz.seed
            << ")";
        ASSERT_EQ(pooled_rt.Log()[i].mode, inline_rt.Log()[i].mode)
            << "analysis mode diverged at op " << i << " (seed "
            << fuzz.seed << ")";
        ASSERT_EQ(pooled_rt.Log()[i].trace, inline_rt.Log()[i].trace)
            << "trace decision diverged at op " << i << " (seed "
            << fuzz.seed << ")";
        ASSERT_EQ(pooled_rt.Log()[i].dependences,
                  inline_rt.Log()[i].dependences)
            << "graph diverged at op " << i << " (seed " << fuzz.seed
            << ")";
    }
    EXPECT_EQ(pooled_fe.Stats().traces_fired,
              inline_fe.Stats().traces_fired);
    EXPECT_EQ(pooled_fe.Stats().jobs_ingested,
              inline_fe.Stats().jobs_ingested);
}

TEST(DifferentialFuzzPooled, OnCompletionIngestionIsStillSafe)
{
    // Throughput mode: with on-completion ingestion, *when* candidates
    // arrive depends on worker timing, so replay decisions are free to
    // differ from inline — but the forwarded stream and the dependence
    // graph must still match the untraced program exactly.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        core::ApopheniaConfig config;
        config.min_trace_length = 5;
        config.max_trace_length = 5000;
        config.batchsize = 800;
        config.multi_scale_factor = 50;

        rt::Runtime traced_rt;
        support::WorkerPool pool(3);
        {
            core::Apophenia fe(traced_rt, config, &pool);
            RandomProgram(seed).Run(fe);
            fe.Flush();
        }

        rt::Runtime bare_rt;
        BareTarget bare(bare_rt);
        RandomProgram(seed).Run(bare);

        ASSERT_EQ(traced_rt.Log().size(), bare_rt.Log().size());
        for (std::size_t i = 0; i < traced_rt.Log().size(); ++i) {
            ASSERT_EQ(traced_rt.Log()[i].token, bare_rt.Log()[i].token)
                << "stream diverged at op " << i << " (seed " << seed
                << ")";
            ASSERT_EQ(traced_rt.Log()[i].dependences,
                      bare_rt.Log()[i].dependences)
                << "graph diverged at op " << i << " (seed " << seed
                << ")";
        }
        EXPECT_EQ(traced_rt.Stats().trace_mismatches, 0u);
    }
}

TEST_P(DifferentialFuzz, IncrementalMiningOnVsOffIsBitIdentical)
{
    // The steady-state mining engine's contract over the whole fuzz
    // corpus: with the incremental tiers on (fast path, rank-splice
    // repair, scratch-reusing rebuild) or off (classic from-scratch
    // MineSlice per window), every replay decision — mode, trace id,
    // stream position — and the dependence graph are byte-identical.
    const FuzzCase fuzz = GetParam();
    core::ApopheniaConfig config;
    config.min_trace_length = fuzz.min_trace_length;
    config.max_trace_length = fuzz.max_trace_length;
    config.batchsize = fuzz.batchsize;
    config.multi_scale_factor =
        std::max<std::size_t>(fuzz.batchsize / 16, 8);

    config.incremental_mining = true;
    rt::Runtime on_rt;
    core::Apophenia on_fe(on_rt, config);
    RandomProgram(fuzz.seed).Run(on_fe);
    on_fe.Flush();

    config.incremental_mining = false;
    rt::Runtime off_rt;
    core::Apophenia off_fe(off_rt, config);
    RandomProgram(fuzz.seed).Run(off_fe);
    off_fe.Flush();

    ASSERT_EQ(on_rt.Log().size(), off_rt.Log().size());
    for (std::size_t i = 0; i < on_rt.Log().size(); ++i) {
        ASSERT_EQ(on_rt.Log()[i].token, off_rt.Log()[i].token)
            << "stream diverged at op " << i << " (seed " << fuzz.seed
            << ")";
        ASSERT_EQ(on_rt.Log()[i].mode, off_rt.Log()[i].mode)
            << "analysis mode diverged at op " << i << " (seed "
            << fuzz.seed << ")";
        ASSERT_EQ(on_rt.Log()[i].trace, off_rt.Log()[i].trace)
            << "trace decision diverged at op " << i << " (seed "
            << fuzz.seed << ")";
        ASSERT_EQ(on_rt.Log()[i].dependences,
                  off_rt.Log()[i].dependences)
            << "graph diverged at op " << i << " (seed " << fuzz.seed
            << ")";
    }
    EXPECT_EQ(on_fe.Stats().traces_fired, off_fe.Stats().traces_fired);
    EXPECT_EQ(on_fe.Stats().jobs_ingested,
              off_fe.Stats().jobs_ingested);
}

TEST_P(DifferentialFuzz, WindowedReductionMatchesRetained)
{
    // The streaming-aware windowed transitive reduction must produce
    // edge sets identical to the retained clone-and-reduce transform
    // on every corpus program — including programs with replayed
    // fragments, whose template-sourced edges are the interesting
    // input shape.
    const FuzzCase fuzz = GetParam();
    core::ApopheniaConfig config;
    config.min_trace_length = fuzz.min_trace_length;
    config.max_trace_length = fuzz.max_trace_length;
    config.batchsize = fuzz.batchsize;
    config.multi_scale_factor =
        std::max<std::size_t>(fuzz.batchsize / 16, 8);

    rt::Runtime traced_rt;
    core::Apophenia fe(traced_rt, config);
    RandomProgram(fuzz.seed).Run(fe);
    fe.Flush();

    for (const std::size_t window : {64u, 30000u}) {
        SCOPED_TRACE("window " + std::to_string(window));
        rt::OperationLog retained = traced_rt.Log().Clone();
        const std::size_t removed =
            rt::TransitiveReduction(retained, window);

        rt::WindowedTransitiveReducer reducer(window);
        std::vector<rt::Dependence> scratch;
        for (std::size_t i = 0; i < traced_rt.Log().size(); ++i) {
            scratch.assign(traced_rt.Log()[i].dependences.begin(),
                           traced_rt.Log()[i].dependences.end());
            reducer.Reduce(i, scratch);
            ASSERT_EQ(retained[i].dependences, scratch)
                << "reduced edges diverged at op " << i << " (seed "
                << fuzz.seed << ")";
        }
        EXPECT_EQ(reducer.RemovedEdges(), removed);
    }
}

// ---------------------------------------------------------------------------
// The multi-tenant service leg: an M-tenant *interleaved* service run
// must be bit-identical, per tenant, to M independent single-tenant
// runs — over the same random corpus every other differential check
// uses. RandomProgram issues in one shot, so the corpus programs are
// first recorded as virtual-region op lists and then replayed in
// round-robin chunks through the tenants' sessions.

/** One recorded front-end call, with virtual region ids. */
struct RecordedOp {
    enum class Kind { kCreate, kDestroy, kPartition, kTask };
    Kind kind = Kind::kTask;
    rt::RegionId region;  ///< kCreate result / kDestroy / kPartition parent
    std::size_t count = 0;               ///< kPartition
    std::vector<rt::RegionId> results;   ///< kPartition virtual children
    rt::TaskLaunch launch;               ///< kTask (virtual region ids)
};

/** A RandomProgram target that records instead of executing. */
class RecordingTarget {
  public:
    rt::RegionId CreateRegion()
    {
        const rt::RegionId id{next_++};
        RecordedOp op;
        op.kind = RecordedOp::Kind::kCreate;
        op.region = id;
        ops_.push_back(std::move(op));
        return id;
    }

    void DestroyRegion(rt::RegionId r)
    {
        RecordedOp op;
        op.kind = RecordedOp::Kind::kDestroy;
        op.region = r;
        ops_.push_back(std::move(op));
    }

    std::vector<rt::RegionId> PartitionRegion(rt::RegionId parent,
                                              std::size_t n)
    {
        RecordedOp op;
        op.kind = RecordedOp::Kind::kPartition;
        op.region = parent;
        op.count = n;
        for (std::size_t i = 0; i < n; ++i) {
            op.results.push_back(rt::RegionId{next_++});
        }
        ops_.push_back(std::move(op));
        return ops_.back().results;
    }

    void ExecuteTask(const rt::TaskLaunch& t)
    {
        RecordedOp op;
        op.kind = RecordedOp::Kind::kTask;
        op.launch = t;
        ops_.push_back(std::move(op));
    }

    std::vector<RecordedOp> Take() { return std::move(ops_); }

  private:
    std::vector<RecordedOp> ops_;
    std::uint64_t next_ = 1;
};

/** Replays a recorded op list against a front end one op at a time,
 * mapping virtual region ids to the target's real ones. */
class OpReplayer {
  public:
    OpReplayer(api::Frontend& fe, const std::vector<RecordedOp>& ops)
        : fe_(&fe), ops_(&ops)
    {
    }

    bool Done() const { return at_ >= ops_->size(); }
    std::size_t Position() const { return at_; }

    /** Point subsequent Steps at another front end. The virtual→real
     * region map carries over: a restored front end's deterministic
     * allocator reproduces the same real ids the crashed one held. */
    void Rebind(api::Frontend& fe) { fe_ = &fe; }

    void Step()
    {
        const RecordedOp& op = (*ops_)[at_++];
        switch (op.kind) {
          case RecordedOp::Kind::kCreate:
            map_[op.region.value] = fe_->CreateRegion();
            break;
          case RecordedOp::Kind::kDestroy:
            fe_->DestroyRegion(map_.at(op.region.value));
            map_.erase(op.region.value);
            break;
          case RecordedOp::Kind::kPartition: {
            const std::vector<rt::RegionId> real =
                fe_->PartitionRegion(map_.at(op.region.value), op.count);
            for (std::size_t i = 0; i < op.results.size(); ++i) {
                map_[op.results[i].value] = real[i];
            }
            break;
          }
          case RecordedOp::Kind::kTask: {
            rt::TaskLaunch launch = op.launch;
            for (rt::RegionRequirement& req : launch.requirements) {
                req.region = map_.at(req.region.value);
            }
            fe_->ExecuteTask(launch);
            break;
          }
        }
    }

  private:
    api::Frontend* fe_;
    const std::vector<RecordedOp>* ops_;
    std::size_t at_ = 0;
    std::unordered_map<std::uint64_t, rt::RegionId> map_;
};

TEST_P(DifferentialFuzz, MultiTenantServiceEqualsIndependentRuns)
{
    const FuzzCase fuzz = GetParam();
    core::ApopheniaConfig config;
    config.min_trace_length = fuzz.min_trace_length;
    config.max_trace_length = fuzz.max_trace_length;
    config.batchsize = fuzz.batchsize;
    config.multi_scale_factor =
        std::max<std::size_t>(fuzz.batchsize / 16, 8);

    // Three tenants; tenants 0 and 2 run the *same* program under
    // different namespaces, so the shared mining cache's cross-tenant
    // adoption path is active during the differential check.
    const std::uint64_t seeds[3] = {fuzz.seed, fuzz.seed + 100,
                                    fuzz.seed};
    std::vector<std::vector<RecordedOp>> programs;
    for (const std::uint64_t seed : seeds) {
        RecordingTarget recorder;
        RandomProgram(seed).Run(recorder);
        programs.push_back(recorder.Take());
    }

    svc::ServiceOptions service_options;
    service_options.config = config;
    svc::TraceService service(service_options);
    for (std::size_t t = 0; t < programs.size(); ++t) {
        svc::TenantOptions tenant;
        tenant.name = "fuzz" + std::to_string(t);
        service.AddTenant(tenant);
    }
    {
        std::vector<OpReplayer> replayers;
        for (std::size_t t = 0; t < programs.size(); ++t) {
            replayers.emplace_back(service.Session(t), programs[t]);
        }
        bool progress = true;
        while (progress) {
            progress = false;
            for (std::size_t t = 0; t < replayers.size(); ++t) {
                const bool was_done = replayers[t].Done();
                for (int k = 0; k < 7 && !replayers[t].Done(); ++k) {
                    replayers[t].Step();
                    progress = true;
                }
                if (!was_done && replayers[t].Done()) {
                    service.Session(t).Flush();
                }
            }
        }
    }

    for (std::size_t t = 0; t < programs.size(); ++t) {
        SCOPED_TRACE("tenant " + std::to_string(t) + " (seed " +
                     std::to_string(seeds[t]) + ")");
        // The independent reference: a single-tenant service pinned to
        // the same namespace, running the same program alone.
        svc::TraceService solo(service_options);
        svc::TenantOptions tenant;
        tenant.name = "solo";
        tenant.name_space = service.TenantNamespace(t);
        solo.AddTenant(tenant);
        OpReplayer replayer(solo.Session(0), programs[t]);
        while (!replayer.Done()) {
            replayer.Step();
        }
        solo.Session(0).Flush();

        const rt::OperationLog& interleaved = service.TenantRuntime(t).Log();
        const rt::OperationLog& alone = solo.TenantRuntime(0).Log();
        ASSERT_EQ(interleaved.size(), alone.size());
        for (std::size_t i = 0; i < interleaved.size(); ++i) {
            ASSERT_EQ(interleaved[i].token, alone[i].token)
                << "stream diverged at op " << i;
            ASSERT_EQ(interleaved[i].mode, alone[i].mode)
                << "analysis mode diverged at op " << i;
            ASSERT_EQ(interleaved[i].trace, alone[i].trace)
                << "trace decision diverged at op " << i;
            ASSERT_EQ(interleaved[i].dependences, alone[i].dependences)
                << "graph diverged at op " << i;
        }
        // The finders mined/adopted identical candidate sets — shared-
        // cache adoption in the interleaved run is bit-identical to
        // mining alone.
        EXPECT_EQ(service.TenantEngine(t).CandidateDigest(),
                  solo.TenantEngine(0).CandidateDigest());
        EXPECT_EQ(service.TenantEngine(t).Stats().traces_fired,
                  solo.TenantEngine(0).Stats().traces_fired);
        EXPECT_EQ(service.TenantEngine(t).Stats().jobs_ingested,
                  solo.TenantEngine(0).Stats().jobs_ingested);
    }
}

TEST_P(DifferentialFuzz, CheckpointRestartAtRandomCutIsBitIdentical)
{
    // The fault:: round-trip property over the whole differential
    // corpus: crash the front end at a seeded random cut point,
    // checkpoint, restore onto a fresh runtime + Apophenia, finish
    // the program — tokens, modes, trace ids, dependence edges and
    // the candidate digest must equal the uninterrupted run's.
    const FuzzCase fuzz = GetParam();
    core::ApopheniaConfig config;
    config.min_trace_length = fuzz.min_trace_length;
    config.max_trace_length = fuzz.max_trace_length;
    config.batchsize = fuzz.batchsize;
    config.multi_scale_factor =
        std::max<std::size_t>(fuzz.batchsize / 16, 8);

    RecordingTarget recorder;
    RandomProgram(fuzz.seed).Run(recorder);
    const std::vector<RecordedOp> program = recorder.Take();
    ASSERT_GT(program.size(), 8u);

    // Uninterrupted reference run.
    rt::Runtime ref_rt;
    core::Apophenia ref_fe(ref_rt, config);
    {
        OpReplayer replayer(ref_fe, program);
        while (!replayer.Done()) {
            replayer.Step();
        }
        ref_fe.Flush();
    }
    const sim::StreamDigest want = sim::StreamDigest::Of(ref_rt.Log());

    // Crash run: a seeded random cut, advanced to the next quiescent
    // point (Runtime::SaveState is illegal mid-trace).
    support::Rng cut_rng(fuzz.seed * 9176 + 11);
    const std::size_t cut = static_cast<std::size_t>(cut_rng.UniformInt(
        program.size() / 4, (3 * program.size()) / 4));
    auto crashed_rt = std::make_unique<rt::Runtime>();
    auto crashed_fe =
        std::make_unique<core::Apophenia>(*crashed_rt, config);
    OpReplayer replayer(*crashed_fe, program);
    while (replayer.Position() < cut) {
        replayer.Step();
    }
    while (!crashed_rt->Quiescent() && !replayer.Done()) {
        replayer.Step();
    }
    ASSERT_TRUE(crashed_rt->Quiescent());

    fault::CheckpointWriter writer;
    crashed_rt->SaveState(writer);
    crashed_fe->SaveState(writer);
    const std::vector<std::uint8_t> image = writer.TakeImage();
    const std::size_t cut_ops = crashed_rt->Log().size();
    sim::StreamDigest digest = sim::StreamDigest::Of(crashed_rt->Log());
    crashed_fe.reset();
    crashed_rt.reset();

    // Restore and finish.
    rt::Runtime restored_rt;
    core::Apophenia restored_fe(restored_rt, config);
    fault::CheckpointReader reader(image);
    restored_rt.LoadState(reader);
    restored_fe.LoadState(reader);
    EXPECT_TRUE(reader.AtEnd());
    replayer.Rebind(restored_fe);
    while (!replayer.Done()) {
        replayer.Step();
    }
    restored_fe.Flush();

    ASSERT_EQ(restored_rt.Log().size(), ref_rt.Log().size());
    for (std::size_t i = cut_ops; i < restored_rt.Log().size(); ++i) {
        ASSERT_EQ(restored_rt.Log()[i].token, ref_rt.Log()[i].token)
            << "stream diverged at op " << i << " (seed " << fuzz.seed
            << ", cut " << cut_ops << ")";
        ASSERT_EQ(restored_rt.Log()[i].mode, ref_rt.Log()[i].mode)
            << "analysis mode diverged at op " << i;
        ASSERT_EQ(restored_rt.Log()[i].trace, ref_rt.Log()[i].trace)
            << "trace decision diverged at op " << i;
        ASSERT_EQ(restored_rt.Log()[i].dependences,
                  ref_rt.Log()[i].dependences)
            << "graph diverged at op " << i;
    }
    for (std::size_t at = cut_ops; at < restored_rt.Log().size(); ++at) {
        digest.Consume(restored_rt.Log()[at]);
    }
    EXPECT_EQ(digest.Value(), want.Value());
    EXPECT_EQ(digest.Count(), want.Count());
    EXPECT_EQ(restored_fe.CandidateDigest(), ref_fe.CandidateDigest());
    EXPECT_EQ(restored_rt.Stats().trace_mismatches, 0u);
}

std::vector<FuzzCase> MakeCases()
{
    std::vector<FuzzCase> cases;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        cases.push_back(FuzzCase{seed, 5, 5000, 800});
    }
    // Stressier configurations on a few seeds.
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        cases.push_back(FuzzCase{seed, 2, 7, 200});     // tiny traces
        cases.push_back(FuzzCase{seed, 30, 5000, 300}); // long min
        cases.push_back(FuzzCase{seed, 5, 5000, 64});   // tiny buffer
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::ValuesIn(MakeCases()));

}  // namespace
}  // namespace apo
