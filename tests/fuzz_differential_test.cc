/**
 * @file
 * Randomized differential testing of the whole front-end.
 *
 * A seeded generator builds random programs that combine everything at
 * once: nested loop structures with random bodies, dynamic region
 * allocation and destruction (allocator recycling), partitioned
 * regions with parent- and child-level accesses, reductions with
 * mixed operators, fills/copies, untraceable operations, and noise.
 * Each program runs through Apophenia and untraced; the forwarded
 * stream and the dependence graph must be identical, under several
 * Apophenia configurations, for every seed.
 *
 * This is the repository's broadest safety net: any replayer
 * bookkeeping bug (wrong flush order, stale pointer, bad template
 * boundary) shows up as a diff here long before it would be
 * diagnosable in an application.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/apophenia.h"
#include "runtime/graph.h"
#include "runtime/runtime.h"
#include "support/executor.h"
#include "support/rng.h"

namespace apo {
namespace {

/** A random but *deterministic per seed* program issuing structured,
 * partially repetitive task streams. */
class RandomProgram {
  public:
    explicit RandomProgram(std::uint64_t seed) : seed_(seed) {}

    /** Issue the program against a front-end-ish target (Apophenia or
     * the runtime itself through a thin adapter). */
    template <typename Target>
    void Run(Target& target)
    {
        support::Rng rng(seed_);
        // Long-lived regions plus a partitioned grid.
        std::vector<rt::RegionId> regions;
        for (int i = 0; i < 6; ++i) {
            regions.push_back(target.CreateRegion());
        }
        const rt::RegionId grid = target.CreateRegion();
        const auto shards = target.PartitionRegion(grid, 4);

        // Random loop nest: outer phases, each with its own body.
        const int phases = static_cast<int>(rng.UniformInt(1, 3));
        for (int phase = 0; phase < phases; ++phase) {
            const int body = static_cast<int>(rng.UniformInt(3, 12));
            const int iters = static_cast<int>(rng.UniformInt(10, 60));
            // A fixed random body for this phase (repetition!).
            support::Rng body_rng(seed_ * 131 + phase);
            std::vector<rt::TaskLaunch> body_tasks;
            for (int b = 0; b < body; ++b) {
                body_tasks.push_back(
                    RandomTask(body_rng, regions, shards, grid, phase));
            }
            for (int it = 0; it < iters; ++it) {
                for (const auto& t : body_tasks) {
                    target.ExecuteTask(t);
                }
                // Occasional irregularities.
                if (rng.Bernoulli(0.1)) {
                    target.ExecuteTask(
                        RandomTask(rng, regions, shards, grid, phase));
                }
                if (rng.Bernoulli(0.05)) {
                    rt::TaskLaunch io = RandomTask(rng, regions, shards,
                                                   grid, phase);
                    io.traceable = false;
                    target.ExecuteTask(io);
                }
                // Dynamic region churn: cuPyNumeric-style scratch.
                if (rng.Bernoulli(0.15)) {
                    const rt::RegionId scratch = target.CreateRegion();
                    target.ExecuteTask(rt::TaskLaunch{
                        777,
                        {{scratch, 0, rt::Privilege::kWriteDiscard, 0},
                         {regions[0], 0, rt::Privilege::kReadOnly, 0}}});
                    target.DestroyRegion(scratch);
                }
            }
        }
    }

  private:
    static rt::TaskLaunch RandomTask(
        support::Rng& rng, const std::vector<rt::RegionId>& regions,
        const std::vector<rt::RegionId>& shards, rt::RegionId grid,
        int phase)
    {
        rt::TaskLaunch t;
        t.task = rng.UniformInt(1, 30) + 1000ull * phase;
        const int reqs = static_cast<int>(rng.UniformInt(1, 3));
        for (int q = 0; q < reqs; ++q) {
            rt::RegionRequirement req;
            const auto pick = rng.UniformInt(0, 9);
            if (pick < 6) {
                req.region = regions[pick % regions.size()];
            } else if (pick < 9) {
                req.region = shards[pick - 6];
            } else {
                req.region = grid;  // parent-level access
            }
            req.field = static_cast<rt::FieldId>(rng.UniformInt(0, 1));
            req.privilege =
                static_cast<rt::Privilege>(rng.UniformInt(0, 3));
            req.redop = req.privilege == rt::Privilege::kReduce
                            ? static_cast<rt::ReductionOpId>(
                                  rng.UniformInt(1, 2))
                            : 0;
            t.requirements.push_back(req);
        }
        t.shard = static_cast<std::uint32_t>(rng.UniformInt(0, 3));
        if (rng.Bernoulli(0.3)) {
            // Occasionally a fill or copy instead of a task.
            return rng.Bernoulli(0.5)
                       ? rt::FillLaunch(t.requirements[0].region,
                                        t.requirements[0].field, t.shard)
                       : rt::CopyLaunch(
                             t.requirements[0].region,
                             t.requirements[0].field,
                             regions[rng.UniformInt(
                                 0, regions.size() - 1)],
                             0, t.shard);
        }
        return t;
    }

    std::uint64_t seed_;
};

/** Adapter so RandomProgram can also drive the bare runtime. */
class BareTarget {
  public:
    explicit BareTarget(rt::Runtime& rt) : rt_(&rt) {}
    rt::RegionId CreateRegion() { return rt_->CreateRegion(); }
    void DestroyRegion(rt::RegionId r) { rt_->DestroyRegion(r); }
    std::vector<rt::RegionId> PartitionRegion(rt::RegionId p,
                                              std::size_t n)
    {
        return rt_->PartitionRegion(p, n);
    }
    void ExecuteTask(const rt::TaskLaunch& t) { rt_->ExecuteTask(t); }

  private:
    rt::Runtime* rt_;
};

struct FuzzCase {
    std::uint64_t seed;
    std::size_t min_trace_length;
    std::size_t max_trace_length;
    std::size_t batchsize;
};

class DifferentialFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(DifferentialFuzz, TracedEqualsUntraced)
{
    const FuzzCase fuzz = GetParam();
    core::ApopheniaConfig config;
    config.min_trace_length = fuzz.min_trace_length;
    config.max_trace_length = fuzz.max_trace_length;
    config.batchsize = fuzz.batchsize;
    config.multi_scale_factor =
        std::max<std::size_t>(fuzz.batchsize / 16, 8);

    rt::Runtime traced_rt;
    core::Apophenia fe(traced_rt, config);
    RandomProgram(fuzz.seed).Run(fe);
    fe.Flush();

    rt::Runtime bare_rt;
    BareTarget bare(bare_rt);
    RandomProgram(fuzz.seed).Run(bare);

    ASSERT_EQ(traced_rt.Log().size(), bare_rt.Log().size());
    for (std::size_t i = 0; i < traced_rt.Log().size(); ++i) {
        ASSERT_EQ(traced_rt.Log()[i].token, bare_rt.Log()[i].token)
            << "stream diverged at op " << i << " (seed " << fuzz.seed
            << ")";
        ASSERT_EQ(traced_rt.Log()[i].dependences,
                  bare_rt.Log()[i].dependences)
            << "graph diverged at op " << i << " (seed " << fuzz.seed
            << ")";
    }
    // No mismatches may ever be raised by automatic tracing.
    EXPECT_EQ(traced_rt.Stats().trace_mismatches, 0u);
    // Untraceable operations never appear inside traces.
    for (const auto& op : traced_rt.Log()) {
        if (!op.launch.traceable) {
            ASSERT_EQ(op.trace, rt::kNoTrace);
        }
    }
}

TEST_P(DifferentialFuzz, PooledEagerDrainMatchesInlineDecisions)
{
    // The zero-copy pipeline's determinism contract: with eager-drain
    // ingestion, a pooled executor (jobs actually mined on background
    // worker threads) must reproduce the InlineExecutor's replay
    // decisions exactly — same analysis modes, same trace ids, at the
    // same stream positions.
    const FuzzCase fuzz = GetParam();
    core::ApopheniaConfig config;
    config.min_trace_length = fuzz.min_trace_length;
    config.max_trace_length = fuzz.max_trace_length;
    config.batchsize = fuzz.batchsize;
    config.multi_scale_factor =
        std::max<std::size_t>(fuzz.batchsize / 16, 8);

    rt::Runtime inline_rt;
    core::Apophenia inline_fe(inline_rt, config);
    RandomProgram(fuzz.seed).Run(inline_fe);
    inline_fe.Flush();

    core::ApopheniaConfig pooled_config = config;
    pooled_config.ingest_mode = core::IngestMode::kEagerDrain;
    rt::Runtime pooled_rt;
    support::PooledExecutor pool(3);
    core::Apophenia pooled_fe(pooled_rt, pooled_config, &pool);
    RandomProgram(fuzz.seed).Run(pooled_fe);
    pooled_fe.Flush();

    ASSERT_EQ(pooled_rt.Log().size(), inline_rt.Log().size());
    for (std::size_t i = 0; i < pooled_rt.Log().size(); ++i) {
        ASSERT_EQ(pooled_rt.Log()[i].token, inline_rt.Log()[i].token)
            << "stream diverged at op " << i << " (seed " << fuzz.seed
            << ")";
        ASSERT_EQ(pooled_rt.Log()[i].mode, inline_rt.Log()[i].mode)
            << "analysis mode diverged at op " << i << " (seed "
            << fuzz.seed << ")";
        ASSERT_EQ(pooled_rt.Log()[i].trace, inline_rt.Log()[i].trace)
            << "trace decision diverged at op " << i << " (seed "
            << fuzz.seed << ")";
        ASSERT_EQ(pooled_rt.Log()[i].dependences,
                  inline_rt.Log()[i].dependences)
            << "graph diverged at op " << i << " (seed " << fuzz.seed
            << ")";
    }
    EXPECT_EQ(pooled_fe.Stats().traces_fired,
              inline_fe.Stats().traces_fired);
    EXPECT_EQ(pooled_fe.Stats().jobs_ingested,
              inline_fe.Stats().jobs_ingested);
}

TEST(DifferentialFuzzPooled, OnCompletionIngestionIsStillSafe)
{
    // Throughput mode: with on-completion ingestion, *when* candidates
    // arrive depends on worker timing, so replay decisions are free to
    // differ from inline — but the forwarded stream and the dependence
    // graph must still match the untraced program exactly.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        core::ApopheniaConfig config;
        config.min_trace_length = 5;
        config.max_trace_length = 5000;
        config.batchsize = 800;
        config.multi_scale_factor = 50;

        rt::Runtime traced_rt;
        support::WorkerPool pool(3);
        {
            core::Apophenia fe(traced_rt, config, &pool);
            RandomProgram(seed).Run(fe);
            fe.Flush();
        }

        rt::Runtime bare_rt;
        BareTarget bare(bare_rt);
        RandomProgram(seed).Run(bare);

        ASSERT_EQ(traced_rt.Log().size(), bare_rt.Log().size());
        for (std::size_t i = 0; i < traced_rt.Log().size(); ++i) {
            ASSERT_EQ(traced_rt.Log()[i].token, bare_rt.Log()[i].token)
                << "stream diverged at op " << i << " (seed " << seed
                << ")";
            ASSERT_EQ(traced_rt.Log()[i].dependences,
                      bare_rt.Log()[i].dependences)
                << "graph diverged at op " << i << " (seed " << seed
                << ")";
        }
        EXPECT_EQ(traced_rt.Stats().trace_mismatches, 0u);
    }
}

TEST_P(DifferentialFuzz, IncrementalMiningOnVsOffIsBitIdentical)
{
    // The steady-state mining engine's contract over the whole fuzz
    // corpus: with the incremental tiers on (fast path, rank-splice
    // repair, scratch-reusing rebuild) or off (classic from-scratch
    // MineSlice per window), every replay decision — mode, trace id,
    // stream position — and the dependence graph are byte-identical.
    const FuzzCase fuzz = GetParam();
    core::ApopheniaConfig config;
    config.min_trace_length = fuzz.min_trace_length;
    config.max_trace_length = fuzz.max_trace_length;
    config.batchsize = fuzz.batchsize;
    config.multi_scale_factor =
        std::max<std::size_t>(fuzz.batchsize / 16, 8);

    config.incremental_mining = true;
    rt::Runtime on_rt;
    core::Apophenia on_fe(on_rt, config);
    RandomProgram(fuzz.seed).Run(on_fe);
    on_fe.Flush();

    config.incremental_mining = false;
    rt::Runtime off_rt;
    core::Apophenia off_fe(off_rt, config);
    RandomProgram(fuzz.seed).Run(off_fe);
    off_fe.Flush();

    ASSERT_EQ(on_rt.Log().size(), off_rt.Log().size());
    for (std::size_t i = 0; i < on_rt.Log().size(); ++i) {
        ASSERT_EQ(on_rt.Log()[i].token, off_rt.Log()[i].token)
            << "stream diverged at op " << i << " (seed " << fuzz.seed
            << ")";
        ASSERT_EQ(on_rt.Log()[i].mode, off_rt.Log()[i].mode)
            << "analysis mode diverged at op " << i << " (seed "
            << fuzz.seed << ")";
        ASSERT_EQ(on_rt.Log()[i].trace, off_rt.Log()[i].trace)
            << "trace decision diverged at op " << i << " (seed "
            << fuzz.seed << ")";
        ASSERT_EQ(on_rt.Log()[i].dependences,
                  off_rt.Log()[i].dependences)
            << "graph diverged at op " << i << " (seed " << fuzz.seed
            << ")";
    }
    EXPECT_EQ(on_fe.Stats().traces_fired, off_fe.Stats().traces_fired);
    EXPECT_EQ(on_fe.Stats().jobs_ingested,
              off_fe.Stats().jobs_ingested);
}

TEST_P(DifferentialFuzz, WindowedReductionMatchesRetained)
{
    // The streaming-aware windowed transitive reduction must produce
    // edge sets identical to the retained clone-and-reduce transform
    // on every corpus program — including programs with replayed
    // fragments, whose template-sourced edges are the interesting
    // input shape.
    const FuzzCase fuzz = GetParam();
    core::ApopheniaConfig config;
    config.min_trace_length = fuzz.min_trace_length;
    config.max_trace_length = fuzz.max_trace_length;
    config.batchsize = fuzz.batchsize;
    config.multi_scale_factor =
        std::max<std::size_t>(fuzz.batchsize / 16, 8);

    rt::Runtime traced_rt;
    core::Apophenia fe(traced_rt, config);
    RandomProgram(fuzz.seed).Run(fe);
    fe.Flush();

    for (const std::size_t window : {64u, 30000u}) {
        SCOPED_TRACE("window " + std::to_string(window));
        rt::OperationLog retained = traced_rt.Log().Clone();
        const std::size_t removed =
            rt::TransitiveReduction(retained, window);

        rt::WindowedTransitiveReducer reducer(window);
        std::vector<rt::Dependence> scratch;
        for (std::size_t i = 0; i < traced_rt.Log().size(); ++i) {
            scratch.assign(traced_rt.Log()[i].dependences.begin(),
                           traced_rt.Log()[i].dependences.end());
            reducer.Reduce(i, scratch);
            ASSERT_EQ(retained[i].dependences, scratch)
                << "reduced edges diverged at op " << i << " (seed "
                << fuzz.seed << ")";
        }
        EXPECT_EQ(reducer.RemovedEdges(), removed);
    }
}

std::vector<FuzzCase> MakeCases()
{
    std::vector<FuzzCase> cases;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        cases.push_back(FuzzCase{seed, 5, 5000, 800});
    }
    // Stressier configurations on a few seeds.
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        cases.push_back(FuzzCase{seed, 2, 7, 200});     // tiny traces
        cases.push_back(FuzzCase{seed, 30, 5000, 300}); // long min
        cases.push_back(FuzzCase{seed, 5, 5000, 64});   // tiny buffer
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::ValuesIn(MakeCases()));

}  // namespace
}  // namespace apo
