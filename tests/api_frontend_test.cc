/**
 * @file
 * Tests for the api layer: the one Frontend issue surface and the
 * zero-allocation LaunchBuilder.
 *
 *  - token-hash and equality parity between TaskLaunch and the
 *    span-based TaskLaunchView the builder produces;
 *  - zero steady-state allocations on the builder issue path
 *    (verified with a counting global operator new);
 *  - uniform FrontendStats across all four implementations,
 *    including the annotations each one *drops* — the silent
 *    annotation discard of the old adapter sinks, now counted;
 *  - Apophenia's untraced forward path: launches are materialized
 *    into the pending buffer only when a candidate match could hold
 *    them, and the buffer_all_launches ablation produces the
 *    identical stream.
 */
#include <gtest/gtest.h>

#include <vector>

#include "api/frontend.h"
#include "api/launch.h"
#include "core/apophenia.h"
#include "sim/cluster.h"
#include "runtime/runtime.h"

#include "support/counting_allocator.h"

namespace apo {
namespace {

rt::TaskLaunch SampleLaunch()
{
    rt::TaskLaunch launch;
    launch.task = rt::TaskIdOf("sample");
    launch.requirements = {
        {rt::RegionId{7}, 0, rt::Privilege::kReadOnly, 0},
        {rt::RegionId{8}, 1, rt::Privilege::kReadWrite, 0},
        {rt::RegionId{9}, 2, rt::Privilege::kReduce, 3}};
    launch.execution_us = 55.0;
    launch.shard = 2;
    return launch;
}

TEST(LaunchView, TokenHashParityWithTaskLaunch)
{
    const rt::TaskLaunch launch = SampleLaunch();
    api::LaunchBuilder builder;
    builder.Start(launch.task, launch.shard, launch.execution_us);
    for (const rt::RegionRequirement& req : launch.requirements) {
        builder.Add(req);
    }
    const rt::TaskLaunchView& view = builder.View();
    // The incrementally folded builder token equals the one-shot hash
    // of the materialized launch...
    EXPECT_EQ(view.token, rt::HashLaunch(launch));
    // ...and of the view's own materialization round trip.
    EXPECT_EQ(view.token, rt::HashLaunch(view.Materialize()));
    // The convenience wrapper computes the same token.
    EXPECT_EQ(rt::TaskLaunchView::Of(launch).token, view.token);
}

TEST(LaunchView, EqualityParityWithTaskLaunch)
{
    const rt::TaskLaunch a = SampleLaunch();
    rt::TaskLaunch b = SampleLaunch();
    b.execution_us = 999.0;  // excluded from identity, like TaskLaunch
    rt::TaskLaunch c = SampleLaunch();
    c.requirements[1].privilege = rt::Privilege::kWriteDiscard;

    EXPECT_EQ(rt::TaskLaunchView::Of(a), rt::TaskLaunchView::Of(b));
    EXPECT_FALSE(rt::TaskLaunchView::Of(a) == rt::TaskLaunchView::Of(c));
    EXPECT_EQ(a == c, rt::TaskLaunchView::Of(a) == rt::TaskLaunchView::Of(c));

    // Materialization round trip preserves the full launch.
    const rt::TaskLaunch round = rt::TaskLaunchView::Of(a).Materialize();
    EXPECT_EQ(round, a);
    EXPECT_EQ(round.execution_us, a.execution_us);
    EXPECT_EQ(round.shard, a.shard);
    EXPECT_EQ(round.blocking, a.blocking);
    EXPECT_EQ(round.traceable, a.traceable);
}

TEST(LaunchBuilder, SteadyStateAllocatesNothing)
{
    api::LaunchBuilder builder;
    const rt::RegionRequirement reqs[4] = {
        {rt::RegionId{1}, 0, rt::Privilege::kReadOnly, 0},
        {rt::RegionId{2}, 1, rt::Privilege::kReadOnly, 0},
        {rt::RegionId{3}, 0, rt::Privilege::kWriteDiscard, 0},
        {rt::RegionId{4}, 2, rt::Privilege::kReduce, 1}};
    rt::TokenHash sum = 0;
    // Warm the arena once.
    builder.Start("warmup", 0, 1.0);
    for (const auto& req : reqs) {
        builder.Add(req);
    }
    sum ^= builder.View().token;

    const std::size_t before =
        support::AllocationCount();
    for (int i = 0; i < 10000; ++i) {
        builder.Start(static_cast<rt::TaskId>(i % 7), i % 3, 10.0);
        for (const auto& req : reqs) {
            builder.Add(req);
        }
        sum ^= builder.View().token;
    }
    const std::size_t after =
        support::AllocationCount();
    EXPECT_EQ(after - before, 0u)
        << "builder issue path allocated in steady state";
    EXPECT_NE(sum, 0u);  // keep the loop observable
}

// -- Uniform frontend stats and annotation accounting -----------------------

void DriveAnnotatedStream(api::Frontend& frontend)
{
    const rt::RegionId r = frontend.CreateRegion();
    api::LaunchBuilder builder;
    for (int iter = 0; iter < 5; ++iter) {
        frontend.BeginTrace(42);
        for (int i = 0; i < 4; ++i) {
            builder.Start(static_cast<rt::TaskId>(100 + i))
                .Add({r, static_cast<rt::FieldId>(i),
                      rt::Privilege::kReadWrite, 0})
                .LaunchOn(frontend);
        }
        frontend.EndTrace(42);
    }
    frontend.Flush();
}

TEST(Frontend, DirectHonorsAnnotations)
{
    rt::Runtime runtime;
    api::DirectFrontend frontend(runtime);
    DriveAnnotatedStream(frontend);
    EXPECT_EQ(frontend.Stats().tasks_executed, 20u);
    EXPECT_EQ(frontend.Stats().annotations_honored, 10u);
    EXPECT_EQ(frontend.Stats().annotations_ignored, 0u);
    EXPECT_EQ(frontend.Stats().flushes, 1u);
    EXPECT_EQ(runtime.Stats().traces_recorded, 1u);
    EXPECT_EQ(runtime.Stats().trace_replays, 4u);
}

TEST(Frontend, UntracedCountsDroppedAnnotations)
{
    rt::Runtime runtime;
    api::UntracedFrontend frontend(runtime);
    DriveAnnotatedStream(frontend);
    EXPECT_EQ(frontend.Stats().tasks_executed, 20u);
    EXPECT_EQ(frontend.Stats().annotations_honored, 0u);
    EXPECT_EQ(frontend.Stats().annotations_ignored, 10u);
    EXPECT_EQ(runtime.Stats().traces_recorded, 0u);
    EXPECT_EQ(runtime.Stats().tasks_analyzed, 20u);
}

TEST(Frontend, ApopheniaCountsDroppedAnnotations)
{
    rt::Runtime runtime;
    core::ApopheniaConfig config;
    core::Apophenia frontend(runtime, config);
    DriveAnnotatedStream(frontend);
    // Apophenia::Stats() is its own (ApopheniaStats) block; the
    // uniform issue-surface counters live on the api::Frontend base.
    EXPECT_EQ(frontend.Stats().tasks_observed, 20u);
    const api::Frontend& as_frontend = frontend;
    EXPECT_EQ(as_frontend.Stats().annotations_ignored, 10u);
    EXPECT_EQ(as_frontend.Stats().annotations_honored, 0u);
    EXPECT_EQ(as_frontend.Stats().tasks_executed, 20u);
}

TEST(Frontend, ClusterCountsDroppedAnnotations)
{
    sim::ClusterOptions options;
    options.coordination.nodes = 2;
    sim::Cluster frontend(options);
    DriveAnnotatedStream(frontend);
    EXPECT_EQ(frontend.Stats().annotations_ignored, 10u);
    EXPECT_EQ(frontend.Stats().tasks_executed, 20u);
    EXPECT_TRUE(frontend.StreamsIdentical());
    EXPECT_TRUE(frontend.StreamDigestsAgree());
}

// -- The untraced forward path ----------------------------------------------

TEST(Apophenia, UnmatchedLaunchesAreNeverMaterialized)
{
    // A never-repeating stream: no candidate is ever found, so no
    // active match exists and every launch takes the direct-forward
    // fast path — zero copies off the caller's arena.
    rt::Runtime runtime;
    core::ApopheniaConfig config;
    config.min_trace_length = 5;
    config.batchsize = 512;
    config.multi_scale_factor = 64;
    core::Apophenia frontend(runtime, config);
    const rt::RegionId r = frontend.CreateRegion();
    api::LaunchBuilder builder;
    for (int i = 0; i < 2000; ++i) {
        builder.Start(static_cast<rt::TaskId>(1000 + i))  // unique ids
            .Add({r, 0, rt::Privilege::kReadWrite, 0})
            .LaunchOn(frontend);
    }
    frontend.Flush();
    EXPECT_EQ(frontend.Stats().launches_buffered, 0u);
    EXPECT_EQ(frontend.Stats().pending_high_water, 0u);
    EXPECT_EQ(frontend.Stats().tasks_forwarded_untraced, 2000u);
    EXPECT_EQ(runtime.Log().size(), 2000u);
}

TEST(Apophenia, BufferAllLaunchesAblationMatchesFastPath)
{
    // The pre-launch-view behaviour (stage everything through
    // pending_) must produce the bit-identical runtime stream.
    auto run = [](bool buffer_all) {
        auto runtime = std::make_unique<rt::Runtime>();
        core::ApopheniaConfig config;
        config.min_trace_length = 5;
        config.batchsize = 400;
        config.multi_scale_factor = 50;
        config.buffer_all_launches = buffer_all;
        core::Apophenia frontend(*runtime, config);
        const rt::RegionId r = frontend.CreateRegion();
        api::LaunchBuilder builder;
        for (int iter = 0; iter < 100; ++iter) {
            for (int i = 0; i < 8; ++i) {
                builder.Start(static_cast<rt::TaskId>(100 + i))
                    .Add({r, static_cast<rt::FieldId>(i),
                          rt::Privilege::kReadWrite, 0})
                    .LaunchOn(frontend);
            }
        }
        frontend.Flush();
        return runtime;
    };
    const auto fast = run(false);
    const auto buffered = run(true);
    ASSERT_EQ(fast->Log().size(), buffered->Log().size());
    for (std::size_t i = 0; i < fast->Log().size(); ++i) {
        ASSERT_EQ(fast->Log()[i].token, buffered->Log()[i].token);
        ASSERT_EQ(fast->Log()[i].mode, buffered->Log()[i].mode);
        ASSERT_EQ(fast->Log()[i].trace, buffered->Log()[i].trace);
    }
    EXPECT_GT(fast->Stats().tasks_replayed, 0u);
}

TEST(Apophenia, MatchedLaunchesAreBufferedAndReplayed)
{
    // A repeating stream: once candidates exist, launches covered by
    // an active match are buffered (materialized) until the match
    // completes or dies — and traces fire.
    rt::Runtime runtime;
    core::ApopheniaConfig config;
    config.min_trace_length = 5;
    config.batchsize = 400;
    config.multi_scale_factor = 50;
    core::Apophenia frontend(runtime, config);
    const rt::RegionId r = frontend.CreateRegion();
    api::LaunchBuilder builder;
    for (int iter = 0; iter < 100; ++iter) {
        for (int i = 0; i < 8; ++i) {
            builder.Start(static_cast<rt::TaskId>(100 + i))
                .Add({r, static_cast<rt::FieldId>(i),
                      rt::Privilege::kReadWrite, 0})
                .LaunchOn(frontend);
        }
    }
    frontend.Flush();
    EXPECT_GT(frontend.Stats().launches_buffered, 0u);
    EXPECT_GT(frontend.Stats().traces_fired, 0u);
    EXPECT_GT(runtime.Stats().tasks_replayed, 0u);
    EXPECT_EQ(frontend.PendingTasks(), 0u);
}

}  // namespace
}  // namespace apo
