/**
 * @file
 * Tests for the harness's streaming-retire execution path: the
 * discrete-event simulator and metrics run as the operation log's
 * retire consumer, resident log memory stays bounded by the block
 * budget, and every reported number is bit-identical to the
 * retained-log path. Also covers the MismatchPolicy::kFallback
 * surfacing through RunExperiment (a mismatching replay degrades to
 * analysis instead of throwing).
 */
#include <gtest/gtest.h>

#include <stdexcept>
#include <string_view>

#include "apps/flexflow.h"
#include "apps/s3d.h"
#include "runtime/errors.h"
#include "sim/harness.h"

namespace apo::sim {
namespace {

ExperimentOptions SmallAuto(const apps::MachineConfig& machine)
{
    ExperimentOptions options;
    options.machine = machine;
    options.iterations = 80;
    options.mode = TracingMode::kAuto;
    options.auto_config.min_trace_length = 10;
    options.auto_config.batchsize = 2000;
    options.auto_config.multi_scale_factor = 100;
    return options;
}

void ExpectBitIdentical(const ExperimentResult& retained,
                        const ExperimentResult& streaming,
                        std::string_view label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(retained.iterations_per_second,
              streaming.iterations_per_second);
    EXPECT_EQ(retained.makespan_us, streaming.makespan_us);
    EXPECT_EQ(retained.total_tasks, streaming.total_tasks);
    EXPECT_EQ(retained.replayed_fraction, streaming.replayed_fraction);
    EXPECT_EQ(retained.warmup_iterations, streaming.warmup_iterations);
    EXPECT_EQ(retained.runtime_stats.tasks_analyzed,
              streaming.runtime_stats.tasks_analyzed);
    EXPECT_EQ(retained.runtime_stats.tasks_recorded,
              streaming.runtime_stats.tasks_recorded);
    EXPECT_EQ(retained.runtime_stats.tasks_replayed,
              streaming.runtime_stats.tasks_replayed);
    EXPECT_EQ(retained.runtime_stats.trace_replays,
              streaming.runtime_stats.trace_replays);
    EXPECT_EQ(retained.runtime_stats.total_analysis_us,
              streaming.runtime_stats.total_analysis_us);
    EXPECT_EQ(retained.frontend_stats.tasks_executed,
              streaming.frontend_stats.tasks_executed);
    ASSERT_EQ(retained.coverage_series.size(),
              streaming.coverage_series.size());
    for (std::size_t i = 0; i < retained.coverage_series.size(); ++i) {
        EXPECT_EQ(retained.coverage_series[i],
                  streaming.coverage_series[i]);
    }
    // The streaming run actually streamed.
    EXPECT_EQ(streaming.log_retired_ops, streaming.total_tasks);
    EXPECT_EQ(retained.log_retired_ops, 0u);
}

TEST(Streaming, BitIdenticalToRetainedOnAutoTracedS3d)
{
    apps::S3dOptions app_options;
    app_options.machine.nodes = 2;
    app_options.machine.gpus_per_node = 2;
    ExperimentOptions options = SmallAuto(app_options.machine);
    options.keep_coverage_series = true;

    apps::S3dApplication retained_app(app_options);
    const ExperimentResult retained =
        RunExperiment(retained_app, options);
    options.log_mode = LogMode::kStreaming;
    apps::S3dApplication streaming_app(app_options);
    const ExperimentResult streaming =
        RunExperiment(streaming_app, options);
    ExpectBitIdentical(retained, streaming, "s3d/auto");
    EXPECT_GT(streaming.replayed_fraction, 0.0);
}

TEST(Streaming, BitIdenticalToRetainedAcrossModesAndApps)
{
    apps::MachineConfig machine;
    machine.nodes = 2;
    machine.gpus_per_node = 4;
    for (const TracingMode mode :
         {TracingMode::kUntraced, TracingMode::kManual,
          TracingMode::kAuto}) {
        apps::S3dOptions app_options;
        app_options.machine = machine;
        ExperimentOptions options = SmallAuto(machine);
        options.mode = mode;
        apps::S3dApplication a(app_options);
        const ExperimentResult retained = RunExperiment(a, options);
        options.log_mode = LogMode::kStreaming;
        apps::S3dApplication b(app_options);
        const ExperimentResult streaming = RunExperiment(b, options);
        ExpectBitIdentical(retained, streaming, ModeName(mode));
    }
    // A second workload shape (FlexFlow's drain pattern).
    apps::FlexFlowOptions ff_options;
    ff_options.machine = machine;
    ExperimentOptions options = SmallAuto(machine);
    apps::FlexFlowApplication a(ff_options);
    const ExperimentResult retained = RunExperiment(a, options);
    options.log_mode = LogMode::kStreaming;
    apps::FlexFlowApplication b(ff_options);
    const ExperimentResult streaming = RunExperiment(b, options);
    ExpectBitIdentical(retained, streaming, "flexflow/auto");
}

// ---------------------------------------------------------------------------
// The north-star scenario: a task stream far larger than memory.

/** A lean synthetic workload: `width` double-buffered stencil updates
 * per iteration over a fixed region set — enough analyzer work to be
 * honest, cheap enough to run a million launches in a test. */
class WideStreamApp final : public apps::Application {
  public:
    explicit WideStreamApp(std::size_t width) : width_(width) {}

    std::string_view Name() const override { return "wide-stream"; }

    void Setup(api::Frontend& frontend) override
    {
        for (std::size_t i = 0; i < width_; ++i) {
            regions_.push_back(frontend.CreateRegion());
        }
    }

    void Iteration(api::Frontend& frontend, std::size_t iter,
                   bool /*manual*/) override
    {
        for (std::size_t i = 0; i < width_; ++i) {
            const rt::RegionId src = regions_[i];
            const rt::RegionId dst = regions_[(i + 1) % width_];
            builder_
                .Start(rt::TaskIdOf("update"),
                       static_cast<std::uint32_t>(i % 4), 25.0)
                .Add(rt::RegionRequirement{src, 0,
                                           rt::Privilege::kReadOnly, 0})
                .Add(rt::RegionRequirement{
                    dst, 0, rt::Privilege::kReadWrite, 0})
                .LaunchOn(frontend);
        }
        (void)iter;
    }

  private:
    std::size_t width_;
    std::vector<rt::RegionId> regions_;
};

TEST(Streaming, MillionTaskStreamRunsUnderConstantLogMemory)
{
    constexpr std::size_t kWidth = 16;
    constexpr std::size_t kIterations = 65536;  // ~1.05M launches
    WideStreamApp app(kWidth);
    ExperimentOptions options;
    options.mode = TracingMode::kUntraced;
    options.iterations = kIterations;
    options.log_mode = LogMode::kStreaming;
    options.machine.nodes = 2;
    options.machine.gpus_per_node = 2;
    const ExperimentResult result = RunExperiment(app, options);
    EXPECT_EQ(result.total_tasks, kWidth * kIterations);
    EXPECT_GE(result.total_tasks, 1u << 20);
    EXPECT_EQ(result.log_retired_ops, result.total_tasks);
    EXPECT_GT(result.iterations_per_second, 0.0);
    // The fixed memory ceiling: a handful of blocks, not a
    // million-entry log. (The retained log for this run would hold
    // >1M rows + arenas — two orders of magnitude above this bound.)
    EXPECT_LT(result.log_peak_resident_bytes, 2u << 20);
}

TEST(Streaming, ShortStreamMatchesRetainedOnTheSameSyntheticApp)
{
    ExperimentOptions options;
    options.mode = TracingMode::kUntraced;
    options.iterations = 200;
    options.machine.nodes = 2;
    options.machine.gpus_per_node = 2;
    WideStreamApp a(8);
    const ExperimentResult retained = RunExperiment(a, options);
    options.log_mode = LogMode::kStreaming;
    WideStreamApp b(8);
    const ExperimentResult streaming = RunExperiment(b, options);
    ExpectBitIdentical(retained, streaming, "wide-stream/untraced");
}

TEST(Streaming, RejectsUnboundedWindowWithInlineReduction)
{
    // Streaming now composes with both control replication and the
    // inline transitive reduction; the one remaining incompatibility
    // is an *unbounded* (-lg:window 0) reduction, which needs the
    // whole retained log.
    WideStreamApp app(4);
    ExperimentOptions options;
    options.log_mode = LogMode::kStreaming;
    options.auto_config.inline_transitive_reduction = true;
    options.auto_config.window = 0;
    EXPECT_THROW(RunExperiment(app, options), rt::RuntimeUsageError);
}

TEST(Streaming, InlineReductionBitIdenticalToRetained)
{
    // -lg:inline_transitive_reduction + kStreaming: the windowed
    // streaming reducer must reproduce the retained clone-and-reduce
    // path exactly, so every reported number matches.
    apps::S3dOptions app_options;
    app_options.machine.nodes = 2;
    app_options.machine.gpus_per_node = 2;
    ExperimentOptions options = SmallAuto(app_options.machine);
    options.auto_config.inline_transitive_reduction = true;
    options.keep_coverage_series = true;

    apps::S3dApplication retained_app(app_options);
    const ExperimentResult retained =
        RunExperiment(retained_app, options);
    options.log_mode = LogMode::kStreaming;
    apps::S3dApplication streaming_app(app_options);
    const ExperimentResult streaming =
        RunExperiment(streaming_app, options);
    ExpectBitIdentical(retained, streaming, "s3d/auto/reduced");
    EXPECT_GT(streaming.replayed_fraction, 0.0);

    // A small window exercises ring eviction in the streaming reducer
    // (and the low-bound path of the retained one) the same way.
    options.auto_config.window = 64;
    options.log_mode = LogMode::kRetained;
    apps::S3dApplication retained_small(app_options);
    const ExperimentResult retained_w =
        RunExperiment(retained_small, options);
    options.log_mode = LogMode::kStreaming;
    apps::S3dApplication streaming_small(app_options);
    const ExperimentResult streaming_w =
        RunExperiment(streaming_small, options);
    ExpectBitIdentical(retained_w, streaming_w, "s3d/auto/window64");
}

TEST(Streaming, ComposesWithControlReplication)
{
    // Replicas > 1 + kStreaming: every node's log streams and
    // agreement is certified by the incremental digests, bit-identical
    // to the retained replicated run.
    apps::S3dOptions app_options;
    app_options.machine.nodes = 2;
    app_options.machine.gpus_per_node = 2;
    ExperimentOptions options = SmallAuto(app_options.machine);
    options.replicas = 2;
    options.replication.seed = 7;

    apps::S3dApplication retained_app(app_options);
    const ExperimentResult retained =
        RunExperiment(retained_app, options);
    options.log_mode = LogMode::kStreaming;
    apps::S3dApplication streaming_app(app_options);
    const ExperimentResult streaming =
        RunExperiment(streaming_app, options);
    ExpectBitIdentical(retained, streaming, "s3d/auto/replicated");
    EXPECT_TRUE(streaming.streams_identical);
    EXPECT_TRUE(retained.streams_identical);
    EXPECT_EQ(streaming.coordination.jobs_coordinated,
              retained.coordination.jobs_coordinated);
    EXPECT_EQ(streaming.coordination.final_slack,
              retained.coordination.final_slack);
}

// ---------------------------------------------------------------------------
// MismatchPolicy::kFallback through the harness (ROADMAP follow-up).

/** Manually annotated app whose trace body deviates after the first
 * iteration: a composed library call (the "extra" launch) slips inside
 * the annotation — section 1's composition failure. */
class FlakyTracedApp final : public apps::Application {
  public:
    std::string_view Name() const override { return "flaky-traced"; }
    bool SupportsManualTracing() const override { return true; }

    void Setup(api::Frontend& frontend) override
    {
        a_ = frontend.CreateRegion();
        b_ = frontend.CreateRegion();
    }

    void Iteration(api::Frontend& frontend, std::size_t iter,
                   bool manual) override
    {
        if (manual) {
            frontend.BeginTrace(7);
        }
        builder_.Start(rt::TaskIdOf("stencil"), 0, 50.0)
            .Add(rt::RegionRequirement{a_, 0,
                                       rt::Privilege::kReadWrite, 0})
            .LaunchOn(frontend);
        if (iter > 0) {
            // Never part of the recorded template.
            builder_.Start(rt::TaskIdOf("extra"), 0, 50.0)
                .Add(rt::RegionRequirement{
                    b_, 0, rt::Privilege::kReadWrite, 0})
                .LaunchOn(frontend);
        }
        if (manual) {
            frontend.EndTrace(7);
        }
    }

  private:
    rt::RegionId a_;
    rt::RegionId b_;
};

TEST(FallbackPolicy, StrictModeThrowsOutOfTheHarness)
{
    FlakyTracedApp app;
    ExperimentOptions options;
    options.mode = TracingMode::kManual;
    options.iterations = 10;
    ASSERT_EQ(options.mismatch_policy, rt::MismatchPolicy::kThrow);
    EXPECT_THROW(RunExperiment(app, options), rt::TraceMismatchError);
}

TEST(FallbackPolicy, FallbackDegradesToAnalysisInsteadOfThrowing)
{
    for (const LogMode log_mode :
         {LogMode::kRetained, LogMode::kStreaming}) {
        FlakyTracedApp app;
        ExperimentOptions options;
        options.mode = TracingMode::kManual;
        options.iterations = 10;
        options.mismatch_policy = rt::MismatchPolicy::kFallback;
        options.log_mode = log_mode;
        const ExperimentResult result = RunExperiment(app, options);
        // Every post-recording iteration deviated: each one degraded
        // to analysis (with its replayed prefix rewound) rather than
        // aborting the run.
        EXPECT_EQ(result.runtime_stats.trace_mismatches, 9u);
        EXPECT_EQ(result.runtime_stats.tasks_rewound, 9u);
        EXPECT_EQ(result.runtime_stats.tasks_replayed, 0u);
        EXPECT_EQ(result.runtime_stats.trace_replays, 0u);
        EXPECT_EQ(result.total_tasks, 1u + 9u * 2u);
        EXPECT_GT(result.makespan_us, 0.0);
    }
}

}  // namespace
}  // namespace apo::sim
