/**
 * @file
 * Tests for the runtime's extended operation set and resource bounds:
 * fills and copies (traceable non-task operations, paper section 4.1),
 * untraceable operations (the composition hazard of section 1), and
 * trace-template cache eviction.
 */
#include <gtest/gtest.h>

#include <vector>

#include "runtime/runtime.h"

namespace apo::rt {
namespace {

TEST(FillCopy, FillBehavesAsAWriter)
{
    Runtime rt;
    const RegionId r = rt.CreateRegion();
    rt.ExecuteTask(FillLaunch(r, 0));
    rt.ExecuteTask(TaskLaunch{1, {{r, 0, Privilege::kReadOnly, 0}}});
    ASSERT_EQ(rt.Log()[1].dependences.size(), 1u);
    EXPECT_EQ(rt.Log()[1].dependences[0].from, 0u);
    EXPECT_EQ(rt.Log()[1].dependences[0].kind, DependenceKind::kTrue);
}

TEST(FillCopy, CopyConnectsSourceAndDestination)
{
    Runtime rt;
    const RegionId a = rt.CreateRegion();
    const RegionId b = rt.CreateRegion();
    rt.ExecuteTask(FillLaunch(a, 0));
    rt.ExecuteTask(CopyLaunch(a, 0, b, 0));
    rt.ExecuteTask(TaskLaunch{1, {{b, 0, Privilege::kReadOnly, 0}}});
    // Copy depends on the fill (reads a); the read depends on the copy.
    ASSERT_EQ(rt.Log()[1].dependences.size(), 1u);
    EXPECT_EQ(rt.Log()[1].dependences[0].from, 0u);
    ASSERT_EQ(rt.Log()[2].dependences.size(), 1u);
    EXPECT_EQ(rt.Log()[2].dependences[0].from, 1u);
}

TEST(FillCopy, FillsAndCopiesAreTraceable)
{
    // Non-task operations participate in traces like tasks do.
    Runtime rt;
    const RegionId a = rt.CreateRegion();
    const RegionId b = rt.CreateRegion();
    for (int i = 0; i < 3; ++i) {
        rt.BeginTrace(1);
        rt.ExecuteTask(FillLaunch(a, 0));
        rt.ExecuteTask(CopyLaunch(a, 0, b, 0));
        rt.ExecuteTask(TaskLaunch{1, {{b, 0, Privilege::kReadOnly, 0}}});
        rt.EndTrace(1);
    }
    EXPECT_EQ(rt.Stats().trace_replays, 2u);
    EXPECT_EQ(rt.Stats().tasks_replayed, 6u);
}

TEST(FillCopy, DistinctOperationsHashDifferently)
{
    const RegionId r{7};
    EXPECT_NE(HashLaunch(FillLaunch(r, 0)),
              HashLaunch(CopyLaunch(r, 0, r, 1)));
    EXPECT_NE(HashLaunch(FillLaunch(r, 0)), HashLaunch(FillLaunch(r, 1)));
}

TEST(Untraceable, RecordingAnUntraceableOperationThrows)
{
    Runtime rt;
    const RegionId r = rt.CreateRegion();
    TaskLaunch io{1, {{r, 0, Privilege::kReadWrite, 0}}};
    io.traceable = false;
    rt.BeginTrace(1);
    EXPECT_THROW(rt.ExecuteTask(io), TraceMismatchError);
}

TEST(Untraceable, ReplayingAnUntraceableOperationThrows)
{
    Runtime rt;
    const RegionId r = rt.CreateRegion();
    rt.BeginTrace(1);
    rt.ExecuteTask(TaskLaunch{1, {{r, 0, Privilege::kReadOnly, 0}}});
    rt.EndTrace(1);
    rt.BeginTrace(1);
    TaskLaunch io{1, {{r, 0, Privilege::kReadOnly, 0}}};
    io.traceable = false;
    EXPECT_THROW(rt.ExecuteTask(io), TraceMismatchError);
}

TEST(Untraceable, FallbackPolicyAbandonsTheRecording)
{
    RuntimeOptions options;
    options.mismatch_policy = MismatchPolicy::kFallback;
    Runtime rt(options);
    const RegionId r = rt.CreateRegion();
    TaskLaunch io{1, {{r, 0, Privilege::kReadWrite, 0}}};
    io.traceable = false;
    rt.BeginTrace(1);
    rt.ExecuteTask(TaskLaunch{2, {{r, 0, Privilege::kReadOnly, 0}}});
    rt.ExecuteTask(io);  // abandons the recording
    rt.ExecuteTask(TaskLaunch{3, {{r, 0, Privilege::kReadOnly, 0}}});
    rt.EndTrace(1);  // tolerated after the abandonment
    EXPECT_EQ(rt.Stats().trace_mismatches, 1u);
    EXPECT_FALSE(rt.HasTrace(1));  // nothing was memoized
    // Dependences are still correct: op 2 (io write) orders the rest.
    ASSERT_EQ(rt.Log()[2].dependences.size(), 1u);
}

TEST(Untraceable, OutsideTracesItIsJustAnOperation)
{
    Runtime rt;
    const RegionId r = rt.CreateRegion();
    TaskLaunch io{1, {{r, 0, Privilege::kReadWrite, 0}}};
    io.traceable = false;
    rt.ExecuteTask(io);
    rt.ExecuteTask(TaskLaunch{2, {{r, 0, Privilege::kReadOnly, 0}}});
    EXPECT_EQ(rt.Log()[1].dependences.size(), 1u);
}

TEST(Eviction, LeastRecentlyUsedTemplateIsEvicted)
{
    RuntimeOptions options;
    options.max_trace_templates = 2;
    Runtime rt(options);
    const RegionId r = rt.CreateRegion();
    auto record = [&](TraceId id) {
        rt.BeginTrace(id);
        rt.ExecuteTask(
            TaskLaunch{id, {{r, 0, Privilege::kReadOnly, 0}}});
        rt.EndTrace(id);
    };
    record(1);
    record(2);
    EXPECT_TRUE(rt.HasTrace(1));
    EXPECT_TRUE(rt.HasTrace(2));
    record(3);  // evicts trace 1 (least recently used)
    EXPECT_FALSE(rt.HasTrace(1));
    EXPECT_TRUE(rt.HasTrace(2));
    EXPECT_TRUE(rt.HasTrace(3));
    EXPECT_EQ(rt.Stats().traces_evicted, 1u);
}

TEST(Eviction, ReplayRefreshesRecency)
{
    RuntimeOptions options;
    options.max_trace_templates = 2;
    Runtime rt(options);
    const RegionId r = rt.CreateRegion();
    auto issue = [&](TraceId id) {
        rt.BeginTrace(id);
        rt.ExecuteTask(
            TaskLaunch{id, {{r, 0, Privilege::kReadOnly, 0}}});
        rt.EndTrace(id);
    };
    issue(1);
    issue(2);
    issue(1);  // replay: trace 1 becomes most recent
    issue(3);  // must evict trace 2, not trace 1
    EXPECT_TRUE(rt.HasTrace(1));
    EXPECT_FALSE(rt.HasTrace(2));
    EXPECT_TRUE(rt.HasTrace(3));
}

TEST(Eviction, EvictedTraceReRecordsTransparently)
{
    RuntimeOptions options;
    options.max_trace_templates = 1;
    Runtime rt(options);
    const RegionId r = rt.CreateRegion();
    auto issue = [&](TraceId id) {
        rt.BeginTrace(id);
        rt.ExecuteTask(
            TaskLaunch{id, {{r, 0, Privilege::kReadOnly, 0}}});
        rt.EndTrace(id);
    };
    issue(1);
    issue(2);  // evicts 1
    issue(1);  // records 1 again — no error, costs α_m again
    EXPECT_EQ(rt.Stats().traces_recorded, 3u);
    EXPECT_EQ(rt.Stats().trace_replays, 0u);
    issue(1);  // now replays
    EXPECT_EQ(rt.Stats().trace_replays, 1u);
}

TEST(Eviction, OrderUnderInterleavedRecordAndReplay)
{
    // The LRU index must agree with a reference recency list across an
    // arbitrary interleaving of recordings (Insert) and replays
    // (Touch): evictions come out strictly oldest-first.
    RuntimeOptions options;
    options.max_trace_templates = 4;
    Runtime rt(options);
    const RegionId r = rt.CreateRegion();
    auto issue = [&](TraceId id) {
        rt.BeginTrace(id);
        rt.ExecuteTask(
            TaskLaunch{id, {{r, 0, Privilege::kReadOnly, 0}}});
        rt.EndTrace(id);
    };
    std::vector<TraceId> recency;  // oldest first
    auto use = [&](TraceId id) {
        std::erase(recency, id);
        recency.push_back(id);
        issue(id);
        if (recency.size() > options.max_trace_templates) {
            recency.erase(recency.begin());  // the expected victim
        }
        ASSERT_EQ(rt.Traces().Size(), recency.size());
        for (TraceId live : recency) {
            EXPECT_TRUE(rt.HasTrace(live)) << "trace " << live;
        }
    };
    // Interleave: record 1..4; replay 1 and 3 (refreshing them);
    // record 5 (evicts 2); replay 4; record 6 (evicts 1 — its replay
    // only deferred it); record 7 (evicts 3).
    for (const TraceId id : {1, 2, 3, 4, 1, 3, 5, 4, 6, 7}) {
        use(id);
    }
    EXPECT_FALSE(rt.HasTrace(1));
    EXPECT_FALSE(rt.HasTrace(2));
    EXPECT_FALSE(rt.HasTrace(3));
    EXPECT_TRUE(rt.HasTrace(5));
    EXPECT_EQ(rt.Stats().traces_evicted, 3u);
}

TEST(Eviction, CacheIndexHandlesDirectInterleavings)
{
    // Direct TraceCache check: EvictLeastRecentlyUsed pops in exactly
    // the Insert/Touch recency order, one per call.
    TraceCache cache;
    for (TraceId id = 1; id <= 5; ++id) {
        TraceTemplate t;
        t.id = id;
        cache.Insert(std::move(t));
    }
    cache.Touch(2);
    cache.Touch(4);
    cache.Touch(1);
    EXPECT_EQ(cache.EvictLeastRecentlyUsed(), 3u);
    EXPECT_EQ(cache.EvictLeastRecentlyUsed(), 5u);
    EXPECT_EQ(cache.EvictLeastRecentlyUsed(), 2u);
    EXPECT_EQ(cache.EvictLeastRecentlyUsed(), 4u);
    EXPECT_EQ(cache.EvictLeastRecentlyUsed(), 1u);
    EXPECT_EQ(cache.EvictLeastRecentlyUsed(), kNoTrace);
    // Touching an absent id is a harmless no-op.
    cache.Touch(99);
    EXPECT_EQ(cache.Size(), 0u);
}

TEST(Eviction, UnlimitedByDefault)
{
    Runtime rt;
    const RegionId r = rt.CreateRegion();
    for (TraceId id = 1; id <= 50; ++id) {
        rt.BeginTrace(id);
        rt.ExecuteTask(
            TaskLaunch{id, {{r, 0, Privilege::kReadOnly, 0}}});
        rt.EndTrace(id);
    }
    EXPECT_EQ(rt.Traces().Size(), 50u);
    EXPECT_EQ(rt.Stats().traces_evicted, 0u);
}

}  // namespace
}  // namespace apo::rt
