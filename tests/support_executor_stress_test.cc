/**
 * @file
 * Concurrency stress tests for WorkerPool and PooledExecutor,
 * TSan-friendly by construction: every assertion is on state that is
 * synchronized through the executors' own primitives (configure with
 * -DAPO_TSAN=ON to run the suite under ThreadSanitizer). Covers
 * concurrent Submit/Drain, bounded-queue backpressure, shutdown with
 * jobs still in flight, and the PooledExecutor's submission-order
 * completion delivery under adversarial completion timing.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "support/executor.h"

namespace apo::support {
namespace {

TEST(WorkerPoolStress, ConcurrentSubmittersAndDrainers)
{
    WorkerPool pool(4);
    std::atomic<std::uint64_t> sum{0};
    std::vector<std::thread> submitters;
    constexpr int kThreads = 4;
    constexpr int kJobsPerThread = 500;
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&pool, &sum] {
            for (int i = 0; i < kJobsPerThread; ++i) {
                pool.Submit([&sum] { sum.fetch_add(1); });
                if (i % 64 == 0) {
                    pool.Drain();  // drain concurrently with submitters
                }
            }
        });
    }
    for (auto& t : submitters) {
        t.join();
    }
    pool.Drain();
    EXPECT_EQ(sum.load(), kThreads * kJobsPerThread);
}

TEST(WorkerPoolStress, ShutdownWithJobsInFlightRunsEverything)
{
    std::atomic<int> ran{0};
    constexpr int kJobs = 64;
    {
        WorkerPool pool(2);
        for (int i = 0; i < kJobs; ++i) {
            pool.Submit([&ran] {
                std::this_thread::sleep_for(std::chrono::microseconds(100));
                ran.fetch_add(1);
            });
        }
        // Destructor runs with most jobs still queued or in flight.
    }
    EXPECT_EQ(ran.load(), kJobs);
}

TEST(WorkerPoolStress, BoundedQueueAppliesBackpressure)
{
    WorkerPool pool(1, /*max_queue=*/2);
    std::atomic<int> ran{0};
    std::atomic<bool> release{false};
    pool.Submit([&] {
        while (!release.load()) {
            std::this_thread::yield();
        }
        ran.fetch_add(1);
    });
    // Fill the queue to its bound, then watch a further Submit block
    // until the pool makes progress.
    pool.Submit([&] { ran.fetch_add(1); });
    pool.Submit([&] { ran.fetch_add(1); });
    std::atomic<bool> fourth_submitted{false};
    std::thread submitter([&] {
        pool.Submit([&] { ran.fetch_add(1); });
        fourth_submitted.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(fourth_submitted.load());  // still blocked on space
    release.store(true);
    submitter.join();
    pool.Drain();
    EXPECT_EQ(ran.load(), 4);
    EXPECT_TRUE(fourth_submitted.load());
}

TEST(WorkerPoolStress, ShutdownReleasesBackpressuredSubmitter)
{
    std::atomic<int> ran{0};
    std::atomic<bool> release{false};
    std::atomic<bool> submitter_entered{false};
    std::thread submitter;
    {
        WorkerPool pool(1, /*max_queue=*/1);
        pool.Submit([&] {
            while (!release.load()) {
                std::this_thread::yield();
            }
            ran.fetch_add(1);
        });
        pool.Submit([&] { ran.fetch_add(1); });  // fills the queue
        submitter = std::thread([&] {
            submitter_entered.store(true);
            pool.Submit([&] { ran.fetch_add(1); });  // blocks on space
        });
        // Wait until the submitter is provably blocked inside Submit,
        // so the destructor below genuinely races a blocked thread and
        // never a not-yet-entered call on a dead pool.
        while (!submitter_entered.load() ||
               pool.BlockedSubmitters() == 0) {
            std::this_thread::yield();
        }
        release.store(true);
        // The destructor races the still-blocked submitter: it must
        // release it and survive it, and the job must still run.
    }
    submitter.join();
    EXPECT_EQ(ran.load(), 3);
}

TEST(PooledExecutorStress, CompletionsDeliverInSubmissionOrder)
{
    PooledExecutor exec(4);
    // Jobs finish in scrambled order (tail jobs sleep least), but the
    // callbacks must still be observed front to back.
    constexpr int kJobs = 200;
    std::vector<int> delivered;
    for (int i = 0; i < kJobs; ++i) {
        exec.Submit(
            [i] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds((kJobs - i) % 7));
            },
            [i, &delivered] { delivered.push_back(i); });
        if (i % 10 == 0) {
            exec.Pump();  // interleave partial deliveries
        }
    }
    exec.Drain();
    ASSERT_EQ(delivered.size(), static_cast<std::size_t>(kJobs));
    for (int i = 0; i < kJobs; ++i) {
        EXPECT_EQ(delivered[i], i);
    }
}

TEST(PooledExecutorStress, DrainIsACompletionBarrier)
{
    PooledExecutor exec(3);
    for (int round = 0; round < 50; ++round) {
        int completions = 0;
        for (int i = 0; i < 8; ++i) {
            exec.Submit([] {}, [&completions] { ++completions; });
        }
        exec.Drain();
        // After Drain, every submitted callback has run on this
        // thread: `completions` needs no synchronization.
        EXPECT_EQ(completions, 8);
    }
}

TEST(PooledExecutorStress, DestructorDeliversOutstandingCompletions)
{
    std::atomic<int> jobs_ran{0};
    int completions = 0;  // callbacks run on this thread only
    {
        PooledExecutor exec(2);
        for (int i = 0; i < 32; ++i) {
            exec.Submit(
                [&jobs_ran] {
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(200));
                    jobs_ran.fetch_add(1);
                },
                [&completions] { ++completions; });
        }
        // Destructor drains with work still in flight.
    }
    EXPECT_EQ(jobs_ran.load(), 32);
    EXPECT_EQ(completions, 32);
}

}  // namespace
}  // namespace apo::support
