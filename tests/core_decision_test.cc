/**
 * @file
 * Tests for the shared decision engine (core/decision_engine.h) and
 * its cluster wiring (sim/cluster.h):
 *
 *  - the engine's decider, fed the same stream at the same ingestion
 *    positions, is bit-identical to a directly driven Apophenia, and
 *    a runtime applying the broadcast Decision events reproduces the
 *    reference runtime's operation stream exactly;
 *  - the steady-state Buffer/DecideStaged/Retire loop is
 *    allocation-free (this TU owns the binary's counting global
 *    operator new): the retention ring, decision log and streaming
 *    decision runtime all recycle;
 *  - shared-decision replicated runs are bit-identical to per-node
 *    runs across every application skeleton, every skew model and
 *    parallel-engine thread count;
 *  - an injected token corruption on one node is caught by the
 *    per-barrier digest check: the node is quarantined into a local
 *    fallback engine, counted in DecisionStats::fallbacks, and the
 *    healthy nodes stay bit-identical to an uncorrupted run;
 *  - a 64-node streaming run broadcasts from one decider while every
 *    node stays under the resident-log ceiling.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "apps/cfd.h"
#include "apps/flexflow.h"
#include "apps/htr.h"
#include "apps/s3d.h"
#include "apps/torchswe.h"
#include "core/apophenia.h"
#include "core/config.h"
#include "core/decision_engine.h"
#include "sim/cluster.h"
#include "sim/harness.h"
#include "support/counting_allocator.h"

namespace apo::sim {
namespace {

core::ApopheniaConfig SmallConfig()
{
    core::ApopheniaConfig config;
    config.min_trace_length = 5;
    config.batchsize = 400;
    config.multi_scale_factor = 50;
    return config;
}

ClusterOptions SmallClusterOptions(std::size_t nodes)
{
    ClusterOptions options;
    options.coordination.nodes = nodes;
    options.config = SmallConfig();
    return options;
}

void DriveLoop(Cluster& fe, int iterations, int body)
{
    std::vector<rt::RegionId> regions;
    for (int i = 0; i < body; ++i) {
        regions.push_back(fe.CreateRegion());
    }
    for (int iter = 0; iter < iterations; ++iter) {
        for (int i = 0; i < body; ++i) {
            fe.ExecuteTask(rt::TaskLaunch{
                static_cast<rt::TaskId>(100 + i),
                {{regions[i], 0, rt::Privilege::kReadOnly, 0},
                 {regions[(i + 1) % body], 0, rt::Privilege::kReadWrite,
                  0}}});
        }
    }
    fe.Flush();
}

void ExpectSameApopheniaStats(const core::ApopheniaStats& a,
                              const core::ApopheniaStats& b)
{
    EXPECT_EQ(a.tasks_observed, b.tasks_observed);
    EXPECT_EQ(a.tasks_forwarded_traced, b.tasks_forwarded_traced);
    EXPECT_EQ(a.tasks_forwarded_untraced, b.tasks_forwarded_untraced);
    EXPECT_EQ(a.traces_fired, b.traces_fired);
    EXPECT_EQ(a.trace_records, b.trace_records);
    EXPECT_EQ(a.trace_replays, b.trace_replays);
    EXPECT_EQ(a.jobs_ingested, b.jobs_ingested);
    EXPECT_EQ(a.candidates_ingested, b.candidates_ingested);
    EXPECT_EQ(a.forced_flushes, b.forced_flushes);
    EXPECT_EQ(a.launches_buffered, b.launches_buffered);
    EXPECT_EQ(a.pending_high_water, b.pending_high_water);
}

// ---------------------------------------------------------------------------
// The engine in isolation: decider parity and broadcast round-trip.

/** Apply the engine's current decision log to `runtime` exactly as
 * Cluster::ApplyDecisions does, then retire the round. */
void ApplyAndRetire(core::DecisionEngine& engine, rt::Runtime& runtime)
{
    for (const core::Decision& d : engine.Decisions()) {
        switch (d.kind) {
          case core::Decision::Kind::kTask:
            runtime.ExecuteTask(engine.LaunchAt(d.value));
            break;
          case core::Decision::Kind::kBegin:
            runtime.BeginTrace(d.value);
            break;
          case core::Decision::Kind::kEnd:
            runtime.EndTrace(d.value);
            break;
        }
    }
    engine.Retire();
}

TEST(DecisionEngine, MirrorsADirectApopheniaBitForBit)
{
    // Reference: one Apophenia driven directly, manual ingestion at
    // batch boundaries. Engine: the same stream staged through
    // Buffer/DecideStaged with ingestion at the same positions, plus
    // one "node" runtime that applies the broadcast decisions.
    const core::ApopheniaConfig config = SmallConfig();
    const rt::RuntimeOptions rt_options;

    rt::Runtime ref_rt(rt_options);
    core::Apophenia ref(ref_rt, config);
    ref.SetIngestMode(core::IngestMode::kManual);

    core::DecisionEngine engine(config, rt_options);
    rt::Runtime node_rt(rt_options);

    constexpr int kBody = 10;
    std::vector<rt::RegionId> regions;
    for (int i = 0; i < kBody; ++i) {
        const rt::RegionId r = ref.CreateRegion();
        ASSERT_EQ(engine.DecisionRuntime().CreateRegion(), r);
        ASSERT_EQ(node_rt.CreateRegion(), r);
        regions.push_back(r);
    }

    const auto ingest_ready = [&] {
        while (ref.OldestJobDone()) {
            ref.IngestOldestJob();
        }
        while (engine.Decider().OldestJobDone()) {
            engine.Decider().IngestOldestJob();
        }
    };

    constexpr std::size_t kBatch = 50;
    constexpr int kIterations = 80;
    std::size_t in_batch = 0;
    for (int iter = 0; iter < kIterations; ++iter) {
        for (int i = 0; i < kBody; ++i) {
            const rt::TaskLaunch launch{
                static_cast<rt::TaskId>(100 + i),
                {{regions[i], 0, rt::Privilege::kReadOnly, 0},
                 {regions[(i + 1) % kBody], 0,
                  rt::Privilege::kReadWrite, 0}}};
            ref.ExecuteTask(launch);
            engine.Buffer(rt::TaskLaunchView::Of(launch));
            if (++in_batch == kBatch) {
                engine.DecideStaged();
                ApplyAndRetire(engine, node_rt);
                ingest_ready();
                in_batch = 0;
            }
        }
    }
    if (in_batch > 0) {
        engine.DecideStaged();
        ApplyAndRetire(engine, node_rt);
    }
    ingest_ready();
    ref.Flush();
    engine.FlushDecider();
    ApplyAndRetire(engine, node_rt);

    // The stream actually exercised record and replay decisions.
    EXPECT_GT(ref.Stats().trace_records, 0u);
    EXPECT_GT(ref.Stats().trace_replays, 0u);

    // Decider state is bit-identical to the directly driven engine.
    ExpectSameApopheniaStats(engine.Decider().Stats(), ref.Stats());
    EXPECT_EQ(engine.Decider().CandidateDigest(), ref.CandidateDigest());

    // ... and so is every runtime-bound call it made, both on its own
    // decision runtime and — through the Decision encoding + LaunchAt
    // round-trip — on the runtime that applied the broadcast.
    const StreamDigest want = StreamDigest::Of(ref_rt.Log());
    EXPECT_GT(want.Count(), 0u);
    const StreamDigest decider = StreamDigest::Of(
        engine.DecisionRuntime().Log());
    EXPECT_EQ(decider.Value(), want.Value());
    EXPECT_EQ(decider.Count(), want.Count());
    const StreamDigest node = StreamDigest::Of(node_rt.Log());
    EXPECT_EQ(node.Value(), want.Value());
    EXPECT_EQ(node.Count(), want.Count());

    // Fully retired: the ring holds nothing past the decided prefix.
    EXPECT_EQ(engine.Staged(),
              static_cast<std::uint64_t>(kIterations * kBody));
    EXPECT_EQ(engine.DecidedThrough(), engine.Staged());
}

TEST(DecisionEngine, SteadyStateDecideLoopIsAllocationFree)
{
    // The engine's staging machinery — the retention ring, the
    // decision log, the untraced forward path and the streaming
    // decision runtime — must all recycle: past warmup, a
    // Buffer/DecideStaged/Retire round allocates nothing. The stream
    // never repeats (distinct tokens) and the scale factor is pushed
    // past the probe length, so the decider's mining/firing machinery
    // (whose allocation behaviour is the finder's own contract, see
    // core_incremental_test) stays out of the measurement.
    core::ApopheniaConfig config;
    config.min_trace_length = 5;
    config.batchsize = 512;
    config.multi_scale_factor = 1u << 30;  // no jobs inside the probe
    // The decider's history ring allocates one block per
    // history_block_size tokens — the finder's amortized O(1/block)
    // cost, not the staging path's. One block outlasts the probe.
    config.history_block_size = 1u << 15;
    rt::RuntimeOptions rt_options;
    rt_options.log_config.ops_per_block = 256;
    rt_options.log_config.payload_block_elems = 1024;

    core::DecisionEngine engine(config, rt_options);
    StreamDigest digest;
    engine.DecisionRuntime().EnableLogStreaming(
        [&digest](const rt::OpView& op) { digest.Consume(op); });

    const rt::RegionId r0 = engine.DecisionRuntime().CreateRegion();
    const rt::RegionId out = engine.DecisionRuntime().CreateRegion();
    rt::TaskLaunch launch;
    launch.requirements = {{r0, 0, rt::Privilege::kReadWrite, 0},
                           {out, 0, rt::Privilege::kWriteDiscard, 0}};
    const auto issue = [&](std::size_t i) {
        // A never-repeating token stream: no candidate can ever
        // match, so every decision is an untraced forward.
        launch.task = static_cast<rt::TaskId>(1000 + i);
        launch.requirements[0].field = static_cast<rt::FieldId>(i % 4);
        engine.Buffer(rt::TaskLaunchView::Of(launch));
    };

    // Warm through several ring-wrap and log-block cycles.
    constexpr std::size_t kBatch = 64;
    std::size_t issued = 0;
    const auto drive = [&](std::size_t count) {
        for (std::size_t b = 0; b < count / kBatch; ++b) {
            for (std::size_t i = 0; i < kBatch; ++i) {
                issue(issued++);
            }
            engine.DecideStaged();
            engine.Retire();
        }
    };
    drive(4096);
    const std::uint64_t before = support::AllocationCount();
    drive(8192);
    EXPECT_EQ(support::AllocationCount() - before, 0u)
        << "steady-state decide loop allocated per launch";
    EXPECT_EQ(engine.DecidedThrough(), engine.Staged());
    EXPECT_EQ(engine.Staged(), 4096u + 8192u);
    // The streaming consumer really drained the decision runtime's
    // log (blocks recycled instead of accumulating).
    engine.DecisionRuntime().DrainLogStream();
    EXPECT_EQ(digest.Count(), 4096u + 8192u);
}

// ---------------------------------------------------------------------------
// Cluster wiring: mode gates and accessor contracts.

TEST(SharedDecisions, AccessorsEnforceTheMode)
{
    Cluster shared(SmallClusterOptions(2));  // shared is the default
    EXPECT_TRUE(shared.SharedDecisions());
    EXPECT_THROW(shared.Node(0), rt::RuntimeUsageError);
    EXPECT_NO_THROW(shared.Decider());

    ClusterOptions per_node_options = SmallClusterOptions(2);
    per_node_options.shared_decisions = false;
    Cluster per_node(per_node_options);
    EXPECT_FALSE(per_node.SharedDecisions());
    EXPECT_THROW(per_node.Decider(), rt::RuntimeUsageError);
    EXPECT_NO_THROW(per_node.Node(0));

    // Nothing to share across: one node, or tracing disabled.
    Cluster single(SmallClusterOptions(1));
    EXPECT_FALSE(single.SharedDecisions());
    ClusterOptions untraced_options = SmallClusterOptions(2);
    untraced_options.config.enabled = false;
    Cluster untraced(untraced_options);
    EXPECT_FALSE(untraced.SharedDecisions());
}

TEST(SharedDecisions, EscapeFlagDisablesTheEngine)
{
    std::vector<std::string> args{"-lg:enable_automatic_tracing",
                                  "-lg:auto_trace:no_shared_decisions"};
    const core::ApopheniaConfig config = core::ParseApopheniaFlags(args);
    EXPECT_TRUE(config.enabled);
    EXPECT_FALSE(config.shared_decisions);
    EXPECT_TRUE(args.empty());

    ClusterOptions options = SmallClusterOptions(2);
    options.config = config;
    Cluster fe(options);
    EXPECT_FALSE(fe.SharedDecisions());
}

TEST(SharedDecisions, BroadcastMatchesPerNodeOnADrivenCluster)
{
    // The same driven stream through both modes: every node's digest,
    // the coordination stats, and the decider-vs-node-0 front-end
    // stats must match bit for bit.
    const auto run = [](bool shared) {
        ClusterOptions options = SmallClusterOptions(3);
        options.shared_decisions = shared;
        options.coordination.seed = 11;
        options.coordination.mean_latency_tasks = 120.0;
        options.coordination.jitter = 0.9;
        auto fe = std::make_unique<Cluster>(options);
        DriveLoop(*fe, /*iterations=*/80, /*body=*/10);
        return fe;
    };
    const auto baseline = run(false);
    const auto shared = run(true);
    EXPECT_FALSE(baseline->SharedDecisions());
    EXPECT_TRUE(shared->SharedDecisions());
    EXPECT_TRUE(shared->StreamDigestsAgree());
    EXPECT_TRUE(shared->StreamsIdentical());
    for (std::size_t n = 0; n < 3; ++n) {
        EXPECT_EQ(shared->NodeDigest(n).Value(),
                  baseline->NodeDigest(n).Value())
            << "node " << n;
        EXPECT_EQ(shared->NodeDigest(n).Count(),
                  baseline->NodeDigest(n).Count());
        EXPECT_FALSE(shared->NodeQuarantined(n));
    }
    const CoordinationStats& a = shared->Coordination();
    const CoordinationStats& b = baseline->Coordination();
    EXPECT_EQ(a.jobs_coordinated, b.jobs_coordinated);
    EXPECT_EQ(a.late_jobs, b.late_jobs);
    EXPECT_EQ(a.final_slack, b.final_slack);
    EXPECT_EQ(a.peak_slack, b.peak_slack);
    ExpectSameApopheniaStats(shared->Decider().Stats(),
                             baseline->Node(0).Stats());
    EXPECT_EQ(shared->Decider().CandidateDigest(),
              baseline->Node(0).CandidateDigest());

    const DecisionStats cost = shared->DecisionCost();
    EXPECT_TRUE(cost.shared);
    EXPECT_GT(cost.batches, 0u);
    EXPECT_GT(cost.decisions, 0u);
    EXPECT_EQ(cost.fallbacks, 0u);
    EXPECT_FALSE(baseline->DecisionCost().shared);
    EXPECT_EQ(baseline->DecisionCost().decisions, 0u);
}

// ---------------------------------------------------------------------------
// The harness axis: every app x every skew x jobs {1, 8}, shared vs
// per-node, bit-identical.

ExperimentOptions ClusterExperiment(std::size_t replicas,
                                    std::size_t iterations)
{
    ExperimentOptions options;
    options.mode = TracingMode::kAuto;
    options.iterations = iterations;
    options.machine.nodes = 2;
    options.machine.gpus_per_node = 2;
    options.auto_config.min_trace_length = 10;
    options.auto_config.batchsize = 1500;
    options.auto_config.multi_scale_factor = 100;
    options.replicas = replicas;
    options.replication.seed = 7;
    options.replication.mean_latency_tasks = 120.0;
    options.replication.jitter = 0.6;
    return options;
}

SkewModel SkewOf(SkewKind kind)
{
    SkewModel skew;
    skew.kind = kind;
    skew.jitter_amplitude = 0.5;
    skew.straggler_node = 1;
    skew.straggler_factor = 4.0;
    skew.burst_period_tasks = 512;
    skew.burst_duration_tasks = 128;
    skew.burst_factor = 8.0;
    skew.burst_stagger_tasks = 171;
    return skew;
}

void ExpectSameResult(const ExperimentResult& shared,
                      const ExperimentResult& baseline)
{
    EXPECT_TRUE(shared.streams_identical);
    EXPECT_EQ(shared.total_tasks, baseline.total_tasks);
    EXPECT_EQ(shared.iterations_per_second,
              baseline.iterations_per_second);
    EXPECT_EQ(shared.makespan_us, baseline.makespan_us);
    EXPECT_EQ(shared.replayed_fraction, baseline.replayed_fraction);
    EXPECT_EQ(shared.stream_digest, baseline.stream_digest);
    EXPECT_EQ(shared.stream_digest_ops, baseline.stream_digest_ops);
    EXPECT_EQ(shared.candidate_digest, baseline.candidate_digest);
    EXPECT_EQ(shared.coordination.jobs_coordinated,
              baseline.coordination.jobs_coordinated);
    EXPECT_EQ(shared.coordination.late_jobs,
              baseline.coordination.late_jobs);
    EXPECT_EQ(shared.coordination.final_slack,
              baseline.coordination.final_slack);
    EXPECT_EQ(shared.coordination.peak_slack,
              baseline.coordination.peak_slack);
    ExpectSameApopheniaStats(shared.apophenia_stats,
                             baseline.apophenia_stats);
    ASSERT_EQ(shared.node_metrics.size(), baseline.node_metrics.size());
    for (std::size_t n = 0; n < shared.node_metrics.size(); ++n) {
        EXPECT_EQ(shared.node_metrics[n].virtual_time_tasks,
                  baseline.node_metrics[n].virtual_time_tasks)
            << "node " << n;
        EXPECT_EQ(shared.node_metrics[n].late_jobs,
                  baseline.node_metrics[n].late_jobs);
        EXPECT_EQ(shared.node_metrics[n].stall_tasks,
                  baseline.node_metrics[n].stall_tasks);
    }
}

template <typename App, typename Options>
void ExpectSharedMatchesPerNode(Options app_options,
                                std::size_t iterations,
                                std::string_view label)
{
    for (const SkewKind kind :
         {SkewKind::kNone, SkewKind::kJitter, SkewKind::kStraggler,
          SkewKind::kInterference}) {
        SCOPED_TRACE(std::string(label) + "/" +
                     std::string(SkewName(kind)));
        ExperimentOptions options = ClusterExperiment(3, iterations);
        options.machine = app_options.machine;
        options.skew = SkewOf(kind);

        // Per-node baseline once (thread-count invariance of each
        // mode on its own is pinned by sim_cluster_test).
        options.shared_decisions = false;
        options.cluster_jobs = 1;
        App baseline_app(app_options);
        const ExperimentResult baseline =
            RunExperiment(baseline_app, options);
        EXPECT_TRUE(baseline.streams_identical);
        EXPECT_FALSE(baseline.shared_decisions);
        EXPECT_GT(baseline.replayed_fraction, 0.0);

        for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
            SCOPED_TRACE(jobs);
            options.shared_decisions = true;
            options.cluster_jobs = jobs;
            App app(app_options);
            const ExperimentResult shared = RunExperiment(app, options);
            EXPECT_TRUE(shared.shared_decisions);
            EXPECT_GT(shared.decision_batches, 0u);
            EXPECT_GT(shared.decisions_broadcast, 0u);
            EXPECT_EQ(shared.decision_fallbacks, 0u);
            ExpectSameResult(shared, baseline);
        }
    }
}

TEST(SharedDecisionMatrix, S3d)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectSharedMatchesPerNode<apps::S3dApplication>(
        apps::S3dOptions{.machine = machine}, 60, "s3d");
}

TEST(SharedDecisionMatrix, Htr)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectSharedMatchesPerNode<apps::HtrApplication>(
        apps::HtrOptions{.machine = machine}, 50, "htr");
}

TEST(SharedDecisionMatrix, Cfd)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectSharedMatchesPerNode<apps::CfdApplication>(
        apps::CfdOptions{.machine = machine}, 120, "cfd");
}

TEST(SharedDecisionMatrix, TorchSwe)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    apps::TorchSweOptions options{.machine = machine};
    options.allocation_pool_budget = 150;
    ExpectSharedMatchesPerNode<apps::TorchSweApplication>(
        options, 80, "torchswe");
}

TEST(SharedDecisionMatrix, FlexFlow)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectSharedMatchesPerNode<apps::FlexFlowApplication>(
        apps::FlexFlowOptions{.machine = machine}, 40, "flexflow");
}

// ---------------------------------------------------------------------------
// Divergence injection: detection, quarantine, healthy-node isolation.

TEST(SharedDecisions, DigestDivergenceQuarantinesTheCorruptNode)
{
    const auto options_of = [](bool faulted) {
        ClusterOptions options = SmallClusterOptions(3);
        options.coordination.seed = 9;
        // The corrupted replica replays against templates recorded
        // from its corrupted stream; deviations must degrade, not
        // throw (Legion's fallback mode).
        options.runtime_options.mismatch_policy =
            rt::MismatchPolicy::kFallback;
        if (faulted) {
            options.fault.enabled = true;
            options.fault.node = 1;
            options.fault.from_task = 200;
            options.fault.token_xor = 0x5eed5eedULL;
        }
        return options;
    };
    Cluster healthy(options_of(false));
    DriveLoop(healthy, /*iterations=*/60, /*body=*/8);
    ASSERT_TRUE(healthy.StreamDigestsAgree());

    Cluster faulted(options_of(true));
    DriveLoop(faulted, 60, 8);

    // Detection and quarantine: exactly the corrupted node fell back.
    EXPECT_TRUE(faulted.SharedDecisions());
    EXPECT_TRUE(faulted.NodeQuarantined(1));
    EXPECT_FALSE(faulted.NodeQuarantined(0));
    EXPECT_FALSE(faulted.NodeQuarantined(2));
    EXPECT_EQ(faulted.DecisionCost().fallbacks, 1u);
    EXPECT_FALSE(faulted.StreamDigestsAgree());

    // The corrupted node kept running on its local fallback engine:
    // every launch still went through, on a diverged stream.
    EXPECT_EQ(faulted.NodeDigest(1).Count(), 60u * 8u);
    EXPECT_NE(faulted.NodeDigest(1).Value(),
              healthy.NodeDigest(1).Value());

    // The healthy nodes are bit-identical to the uncorrupted run —
    // the fault stayed contained.
    for (const std::size_t n : {std::size_t{0}, std::size_t{2}}) {
        EXPECT_EQ(faulted.NodeDigest(n).Value(),
                  healthy.NodeDigest(n).Value())
            << "node " << n;
        EXPECT_EQ(faulted.NodeDigest(n).Count(),
                  healthy.NodeDigest(n).Count());
    }
}

// ---------------------------------------------------------------------------
// Scale: one decider broadcasting to 64 streaming nodes.

TEST(SharedDecisions, SixtyFourNodeBroadcastStaysUnderTheLogCeiling)
{
    constexpr std::size_t kCeilingBytes = 2u << 20;  // 2 MiB per node
    ExperimentOptions options = ClusterExperiment(64, 40);
    options.log_mode = LogMode::kStreaming;
    options.skew.kind = SkewKind::kJitter;
    options.skew.jitter_amplitude = 0.3;
    apps::S3dApplication app(
        apps::S3dOptions{.machine = options.machine});
    const ExperimentResult result = RunExperiment(app, options);
    EXPECT_TRUE(result.shared_decisions);
    EXPECT_TRUE(result.streams_identical);
    EXPECT_GT(result.replayed_fraction, 0.0);
    EXPECT_GT(result.decision_batches, 0u);
    EXPECT_GT(result.decisions_broadcast, 0u);
    EXPECT_EQ(result.decision_fallbacks, 0u);
    ASSERT_EQ(result.node_metrics.size(), 64u);
    EXPECT_EQ(result.log_retired_ops, result.total_tasks);
    EXPECT_LT(result.log_peak_resident_bytes, kCeilingBytes)
        << "worst-node resident log exceeded the streaming ceiling";
}

}  // namespace
}  // namespace apo::sim
