/**
 * @file
 * The replication axis of the experiment harness: every workload
 * skeleton must run, unmodified, on an N-node sim::Cluster through
 * RunExperiment — the paper's section 5.1 configuration over the
 * full application set — with the control-replication safety
 * property (bit-identical per-node streams) checked, and with tracing
 * actually engaging (nonzero replayed fraction).
 */
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "apps/cfd.h"
#include "apps/flexflow.h"
#include "apps/htr.h"
#include "apps/s3d.h"
#include "apps/torchswe.h"
#include "sim/harness.h"

namespace apo {
namespace {

apps::MachineConfig SmallMachine()
{
    apps::MachineConfig m;
    m.nodes = 2;
    m.gpus_per_node = 2;
    return m;
}

sim::ExperimentOptions ReplicatedOptions(std::size_t iterations)
{
    sim::ExperimentOptions options;
    options.mode = sim::TracingMode::kAuto;
    options.iterations = iterations;
    options.machine = SmallMachine();
    options.auto_config.min_trace_length = 10;
    options.auto_config.batchsize = 1500;
    options.auto_config.multi_scale_factor = 100;
    options.replicas = 2;
    options.replication.seed = 7;
    options.replication.mean_latency_tasks = 120.0;
    options.replication.jitter = 0.6;
    return options;
}

template <typename App, typename Options>
void ExpectReplicatedRun(Options app_options, std::size_t iterations)
{
    App app(app_options);
    const sim::ExperimentResult result =
        sim::RunExperiment(app, ReplicatedOptions(iterations));
    EXPECT_TRUE(result.streams_identical)
        << app.Name() << ": replicated nodes diverged";
    EXPECT_GT(result.replayed_fraction, 0.0)
        << app.Name() << ": tracing never engaged under replication";
    EXPECT_GT(result.coordination.jobs_coordinated, 0u);
    EXPECT_GT(result.iterations_per_second, 0.0);
    EXPECT_EQ(result.frontend_stats.tasks_executed, result.total_tasks);
}

TEST(ReplicatedHarness, S3d)
{
    ExpectReplicatedRun<apps::S3dApplication>(
        apps::S3dOptions{.machine = SmallMachine()}, 60);
}

TEST(ReplicatedHarness, Htr)
{
    ExpectReplicatedRun<apps::HtrApplication>(
        apps::HtrOptions{.machine = SmallMachine()}, 50);
}

TEST(ReplicatedHarness, Cfd)
{
    ExpectReplicatedRun<apps::CfdApplication>(
        apps::CfdOptions{.machine = SmallMachine()}, 120);
}

TEST(ReplicatedHarness, TorchSwe)
{
    apps::TorchSweOptions options{.machine = SmallMachine()};
    options.allocation_pool_budget = 150;
    ExpectReplicatedRun<apps::TorchSweApplication>(options, 80);
}

TEST(ReplicatedHarness, FlexFlow)
{
    ExpectReplicatedRun<apps::FlexFlowApplication>(
        apps::FlexFlowOptions{.machine = SmallMachine()}, 40);
}

TEST(ReplicatedHarness, ThreeNodesStayIdentical)
{
    sim::ExperimentOptions options = ReplicatedOptions(50);
    options.replicas = 3;
    apps::S3dApplication app(apps::S3dOptions{.machine = SmallMachine()});
    const auto result = sim::RunExperiment(app, options);
    EXPECT_TRUE(result.streams_identical);
    EXPECT_GT(result.replayed_fraction, 0.0);
}

TEST(ReplicatedHarness, UntracedReplicationRunsWithTracingDisabled)
{
    sim::ExperimentOptions options = ReplicatedOptions(30);
    options.mode = sim::TracingMode::kUntraced;
    apps::HtrApplication app(apps::HtrOptions{.machine = SmallMachine()});
    const auto result = sim::RunExperiment(app, options);
    EXPECT_TRUE(result.streams_identical);
    EXPECT_EQ(result.replayed_fraction, 0.0);
    EXPECT_EQ(result.runtime_stats.tasks_analyzed, result.total_tasks);
}

TEST(ReplicatedHarness, ManualModeIsRejectedWithTypedError)
{
    sim::ExperimentOptions options = ReplicatedOptions(10);
    options.mode = sim::TracingMode::kManual;
    apps::S3dApplication app(apps::S3dOptions{.machine = SmallMachine()});
    // The rejection is a typed usage error whose message names both
    // offending options, not a generic invalid_argument.
    try {
        sim::RunExperiment(app, options);
        FAIL() << "kManual replication was not rejected";
    } catch (const rt::RuntimeUsageError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("kManual"), std::string::npos) << what;
        EXPECT_NE(what.find("replicas"), std::string::npos) << what;
    }
}

/** Run one app through every issue-surface implementation the
 * harness offers and check the acceptance properties of each. */
template <typename App, typename Options>
void ExpectAllModes(Options app_options, std::size_t iterations)
{
    sim::ExperimentOptions base;
    base.iterations = iterations;
    base.machine = SmallMachine();
    base.auto_config.min_trace_length = 10;
    base.auto_config.batchsize = 1500;
    base.auto_config.multi_scale_factor = 100;

    // Direct runtime (manual annotations where the app has them).
    {
        App app(app_options);
        sim::ExperimentOptions options = base;
        options.mode = sim::TracingMode::kManual;
        const auto result = sim::RunExperiment(app, options);
        EXPECT_GT(result.total_tasks, 0u);
        if (app.SupportsManualTracing()) {
            EXPECT_GT(result.replayed_fraction, 0.0);
            EXPECT_GT(result.frontend_stats.annotations_honored, 0u);
        }
    }
    // Untraced.
    {
        App app(app_options);
        sim::ExperimentOptions options = base;
        options.mode = sim::TracingMode::kUntraced;
        const auto result = sim::RunExperiment(app, options);
        EXPECT_EQ(result.replayed_fraction, 0.0);
        EXPECT_EQ(result.runtime_stats.tasks_analyzed, result.total_tasks);
    }
    // Apophenia, inline and pooled (eager-drain: decisions must be
    // bit-identical to inline — PR 1's determinism contract).
    sim::ExperimentResult inline_result;
    {
        App app(app_options);
        sim::ExperimentOptions options = base;
        options.mode = sim::TracingMode::kAuto;
        options.auto_config.ingest_mode = core::IngestMode::kEagerDrain;
        inline_result = sim::RunExperiment(app, options);
        EXPECT_GT(inline_result.replayed_fraction, 0.0);
    }
    {
        App app(app_options);
        sim::ExperimentOptions options = base;
        options.mode = sim::TracingMode::kAuto;
        options.auto_config.ingest_mode = core::IngestMode::kEagerDrain;
        options.executor_mode = sim::ExecutorMode::kPooled;
        const auto pooled = sim::RunExperiment(app, options);
        EXPECT_DOUBLE_EQ(pooled.iterations_per_second,
                         inline_result.iterations_per_second);
        EXPECT_DOUBLE_EQ(pooled.makespan_us, inline_result.makespan_us);
        EXPECT_EQ(pooled.runtime_stats.tasks_replayed,
                  inline_result.runtime_stats.tasks_replayed);
        EXPECT_EQ(pooled.runtime_stats.trace_replays,
                  inline_result.runtime_stats.trace_replays);
    }
}

TEST(FrontendMatrix, S3d)
{
    ExpectAllModes<apps::S3dApplication>(
        apps::S3dOptions{.machine = SmallMachine()}, 60);
}

TEST(FrontendMatrix, Htr)
{
    ExpectAllModes<apps::HtrApplication>(
        apps::HtrOptions{.machine = SmallMachine()}, 50);
}

TEST(FrontendMatrix, Cfd)
{
    ExpectAllModes<apps::CfdApplication>(
        apps::CfdOptions{.machine = SmallMachine()}, 120);
}

TEST(FrontendMatrix, TorchSwe)
{
    apps::TorchSweOptions options{.machine = SmallMachine()};
    options.allocation_pool_budget = 150;
    ExpectAllModes<apps::TorchSweApplication>(options, 80);
}

TEST(FrontendMatrix, FlexFlow)
{
    ExpectAllModes<apps::FlexFlowApplication>(
        apps::FlexFlowOptions{.machine = SmallMachine()}, 40);
}

TEST(ReplicatedHarness, SingleReplicaMatchesPlainAuto)
{
    // replicas == 1 must be exactly the non-replicated harness path.
    sim::ExperimentOptions replicated = ReplicatedOptions(40);
    replicated.replicas = 1;
    sim::ExperimentOptions plain = replicated;
    apps::S3dApplication a(apps::S3dOptions{.machine = SmallMachine()});
    apps::S3dApplication b(apps::S3dOptions{.machine = SmallMachine()});
    const auto ra = sim::RunExperiment(a, replicated);
    const auto rb = sim::RunExperiment(b, plain);
    EXPECT_DOUBLE_EQ(ra.iterations_per_second, rb.iterations_per_second);
    EXPECT_DOUBLE_EQ(ra.makespan_us, rb.makespan_us);
    EXPECT_EQ(ra.total_tasks, rb.total_tasks);
    EXPECT_TRUE(ra.streams_identical);
}

}  // namespace
}  // namespace apo
