/**
 * @file
 * Tests for the fault:: checkpoint/restore substrate (PR: fault
 * tolerance): a mid-stream crash + restore-from-checkpoint must
 * re-converge to bit-identical replay decisions — same stream digest,
 * same candidate digest, same suffix rows — pinned across two
 * applications and both log modes (retained and streaming-retire);
 * truncated or bit-flipped images must be rejected with a typed
 * fault::CheckpointError before any state is mutated; and the shared
 * MiningCache round-trips its published windows.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/frontend.h"
#include "apps/cfd.h"
#include "apps/s3d.h"
#include "core/apophenia.h"
#include "core/mining_cache.h"
#include "fault/checkpoint.h"
#include "runtime/runtime.h"
#include "sim/cluster.h"

namespace apo {
namespace {

core::ApopheniaConfig SmallConfig()
{
    core::ApopheniaConfig config;
    config.min_trace_length = 5;
    config.batchsize = 400;
    config.multi_scale_factor = 50;
    return config;
}

/** One recorded front-end call, with virtual region ids. */
struct RecordedCall {
    enum class Kind { kCreate, kDestroy, kPartition, kTask };
    Kind kind = Kind::kTask;
    rt::RegionId region;  ///< kCreate result / kDestroy / kPartition parent
    std::size_t count = 0;              ///< kPartition
    std::vector<rt::RegionId> results;  ///< kPartition virtual children
    rt::TaskLaunch launch;              ///< kTask (virtual region ids)
};

/** An api::Frontend that records the application's calls instead of
 * executing them, so the identical stream can be replayed into any
 * number of real front ends — including one restored mid-stream. */
class RecordingFrontend final : public api::Frontend {
  public:
    std::string_view Name() const override { return "recorder"; }

    rt::RegionId CreateRegion() override
    {
        const rt::RegionId id{next_++};
        RecordedCall call;
        call.kind = RecordedCall::Kind::kCreate;
        call.region = id;
        calls_.push_back(std::move(call));
        return id;
    }

    void DestroyRegion(rt::RegionId r) override
    {
        RecordedCall call;
        call.kind = RecordedCall::Kind::kDestroy;
        call.region = r;
        calls_.push_back(std::move(call));
    }

    std::vector<rt::RegionId> PartitionRegion(rt::RegionId parent,
                                              std::size_t count) override
    {
        RecordedCall call;
        call.kind = RecordedCall::Kind::kPartition;
        call.region = parent;
        call.count = count;
        for (std::size_t i = 0; i < count; ++i) {
            call.results.push_back(rt::RegionId{next_++});
        }
        calls_.push_back(std::move(call));
        return calls_.back().results;
    }

    std::vector<RecordedCall> Take() { return std::move(calls_); }

  protected:
    void DoExecuteTask(const rt::TaskLaunchView& launch) override
    {
        RecordedCall call;
        call.kind = RecordedCall::Kind::kTask;
        launch.MaterializeInto(call.launch);
        calls_.push_back(std::move(call));
    }
    bool DoBeginTrace(rt::TraceId) override { return false; }
    bool DoEndTrace(rt::TraceId) override { return false; }
    void DoFlush() override {}

  private:
    std::vector<RecordedCall> calls_;
    std::uint64_t next_ = 1;
};

/** Replays a recorded call list one call at a time, mapping virtual
 * region ids to the target's real ones. Rebind() switches the target
 * mid-stream (the virtual→real map survives — the restored front
 * end's deterministic allocator reproduces the same real ids). */
class CallReplayer {
  public:
    CallReplayer(api::Frontend& fe, const std::vector<RecordedCall>& calls)
        : fe_(&fe), calls_(&calls)
    {
    }

    bool Done() const { return at_ >= calls_->size(); }
    std::size_t Position() const { return at_; }
    void Rebind(api::Frontend& fe) { fe_ = &fe; }

    void Step()
    {
        const RecordedCall& call = (*calls_)[at_++];
        switch (call.kind) {
          case RecordedCall::Kind::kCreate:
            map_[call.region.value] = fe_->CreateRegion();
            break;
          case RecordedCall::Kind::kDestroy:
            fe_->DestroyRegion(map_.at(call.region.value));
            map_.erase(call.region.value);
            break;
          case RecordedCall::Kind::kPartition: {
            const std::vector<rt::RegionId> real =
                fe_->PartitionRegion(map_.at(call.region.value),
                                     call.count);
            for (std::size_t i = 0; i < call.results.size(); ++i) {
                map_[call.results[i].value] = real[i];
            }
            break;
          }
          case RecordedCall::Kind::kTask: {
            rt::TaskLaunch launch = call.launch;
            for (rt::RegionRequirement& req : launch.requirements) {
                req.region = map_.at(req.region.value);
            }
            fe_->ExecuteTask(launch);
            break;
          }
        }
    }

  private:
    api::Frontend* fe_;
    const std::vector<RecordedCall>* calls_;
    std::size_t at_ = 0;
    std::unordered_map<std::uint64_t, rt::RegionId> map_;
};

/** Record `iterations` main-loop iterations of App as a call list. */
template <typename App, typename Options>
std::vector<RecordedCall> RecordProgram(const Options& app_options,
                                        std::size_t iterations)
{
    RecordingFrontend recorder;
    App app(app_options);
    app.Setup(recorder);
    for (std::size_t iter = 0; iter < iterations; ++iter) {
        app.Iteration(recorder, iter, /*manual_tracing=*/false);
    }
    return recorder.Take();
}

/** One traced stack plus its (optional) streaming digest. */
struct Stack {
    std::unique_ptr<rt::Runtime> runtime;
    std::unique_ptr<core::Apophenia> apophenia;
    sim::StreamDigest digest;  ///< streaming mode only

    Stack(const rt::RuntimeOptions& rt_options,
          const core::ApopheniaConfig& config, bool streaming)
        : runtime(std::make_unique<rt::Runtime>(rt_options))
    {
        if (streaming) {
            // Attach before any launch (and, on a restore, before
            // LoadState — the restored log must already stream).
            runtime->EnableLogStreaming(
                [this](const rt::OpView& op) { digest.Consume(op); });
        }
        apophenia =
            std::make_unique<core::Apophenia>(*runtime, config);
    }
};

/**
 * The crash+restore property: drive an app to a mid-stream quiescent
 * cut, checkpoint runtime + front end, destroy both, restore onto a
 * fresh pair, finish the program — the full-stream digest, candidate
 * digest and (retained mode) every post-cut log row must be
 * bit-identical to an uninterrupted run.
 */
template <typename App, typename Options>
void ExpectCrashRestoreBitIdentical(const Options& app_options,
                                    std::size_t iterations,
                                    bool streaming,
                                    std::string_view label)
{
    SCOPED_TRACE(std::string(label) +
                 (streaming ? " (streaming)" : " (retained)"));
    const std::vector<RecordedCall> program =
        RecordProgram<App>(app_options, iterations);
    ASSERT_GT(program.size(), 40u);

    rt::RuntimeOptions rt_options;
    rt_options.nodes = app_options.machine.nodes;
    const core::ApopheniaConfig config = SmallConfig();

    // Uninterrupted reference run.
    Stack reference(rt_options, config, streaming);
    CallReplayer ref_replayer(*reference.apophenia, program);
    while (!ref_replayer.Done()) {
        ref_replayer.Step();
    }
    reference.apophenia->Flush();
    if (streaming) {
        reference.runtime->DrainLogStream();
    } else {
        reference.digest = sim::StreamDigest::Of(reference.runtime->Log());
    }

    // Crash run: stop at (or just past) the midpoint, at the first
    // quiescent point (Runtime::SaveState is illegal mid-trace).
    auto crashed =
        std::make_unique<Stack>(rt_options, config, streaming);
    CallReplayer replayer(*crashed->apophenia, program);
    const std::size_t cut = program.size() / 2;
    while (replayer.Position() < cut) {
        replayer.Step();
    }
    while (!crashed->runtime->Quiescent() && !replayer.Done()) {
        replayer.Step();
    }
    ASSERT_TRUE(crashed->runtime->Quiescent());
    ASSERT_FALSE(replayer.Done()) << "cut swallowed the whole program";

    fault::CheckpointWriter writer;
    crashed->runtime->SaveState(writer);
    crashed->apophenia->SaveState(writer);
    const std::vector<std::uint8_t> image = writer.TakeImage();
    ASSERT_FALSE(image.empty());
    const std::size_t cut_ops = crashed->runtime->Log().size();
    sim::StreamDigest prefix = streaming
                                   ? crashed->digest
                                   : sim::StreamDigest::Of(
                                         crashed->runtime->Log());
    crashed.reset();  // the crash: the process (and its state) is gone

    // Restore onto a fresh pair and finish the program.
    Stack restored(rt_options, config, streaming);
    restored.digest = prefix;  // streaming consumer continues the fold
    fault::CheckpointReader reader(image);
    restored.runtime->LoadState(reader);
    restored.apophenia->LoadState(reader);
    EXPECT_TRUE(reader.AtEnd());
    replayer.Rebind(*restored.apophenia);
    while (!replayer.Done()) {
        replayer.Step();
    }
    restored.apophenia->Flush();
    sim::StreamDigest final_digest = prefix;
    if (streaming) {
        restored.runtime->DrainLogStream();
        final_digest = restored.digest;
    } else {
        const rt::OperationLog& log = restored.runtime->Log();
        for (std::size_t at = cut_ops; at < log.size(); ++at) {
            final_digest.Consume(log[at]);
        }
    }

    // Bit-identical re-convergence.
    EXPECT_EQ(final_digest.Value(), reference.digest.Value());
    EXPECT_EQ(final_digest.Count(), reference.digest.Count());
    EXPECT_EQ(restored.apophenia->CandidateDigest(),
              reference.apophenia->CandidateDigest());
    EXPECT_EQ(restored.runtime->Log().size(),
              reference.runtime->Log().size());
    if (!streaming) {
        const rt::OperationLog& got = restored.runtime->Log();
        const rt::OperationLog& want = reference.runtime->Log();
        for (std::size_t i = cut_ops; i < got.size(); ++i) {
            ASSERT_EQ(got[i].token, want[i].token)
                << "stream diverged at op " << i;
            ASSERT_EQ(got[i].mode, want[i].mode)
                << "analysis mode diverged at op " << i;
            ASSERT_EQ(got[i].trace, want[i].trace)
                << "trace decision diverged at op " << i;
            ASSERT_EQ(got[i].dependences, want[i].dependences)
                << "graph diverged at op " << i;
        }
    }
    // Cumulative accounting re-converges too (saved + resumed).
    EXPECT_EQ(restored.runtime->Stats().tasks_replayed,
              reference.runtime->Stats().tasks_replayed);
    EXPECT_EQ(restored.runtime->Stats().traces_recorded,
              reference.runtime->Stats().traces_recorded);
    EXPECT_EQ(restored.runtime->Stats().trace_mismatches, 0u);
    EXPECT_EQ(restored.apophenia->Stats().traces_fired,
              reference.apophenia->Stats().traces_fired);
    EXPECT_EQ(restored.apophenia->Stats().jobs_ingested,
              reference.apophenia->Stats().jobs_ingested);
}

TEST(CheckpointRestore, S3dRetained)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectCrashRestoreBitIdentical<apps::S3dApplication>(
        apps::S3dOptions{.machine = machine}, 40, false, "s3d");
}

TEST(CheckpointRestore, S3dStreaming)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectCrashRestoreBitIdentical<apps::S3dApplication>(
        apps::S3dOptions{.machine = machine}, 40, true, "s3d");
}

TEST(CheckpointRestore, CfdRetained)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectCrashRestoreBitIdentical<apps::CfdApplication>(
        apps::CfdOptions{.machine = machine}, 80, false, "cfd");
}

TEST(CheckpointRestore, CfdStreaming)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectCrashRestoreBitIdentical<apps::CfdApplication>(
        apps::CfdOptions{.machine = machine}, 80, true, "cfd");
}

// ---------------------------------------------------------------------------
// Corruption detection: every malformed image is a typed error.

std::vector<std::uint8_t> SampleImage()
{
    // A real (small) image: an s3d prefix through runtime + front end.
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    const std::vector<RecordedCall> program =
        RecordProgram<apps::S3dApplication>(
            apps::S3dOptions{.machine = machine}, 10);
    rt::RuntimeOptions rt_options;
    rt_options.nodes = machine.nodes;
    Stack stack(rt_options, SmallConfig(), /*streaming=*/false);
    CallReplayer replayer(*stack.apophenia, program);
    while (!replayer.Done()) {
        replayer.Step();
    }
    stack.apophenia->Flush();  // closes any open trace: quiescent
    fault::CheckpointWriter writer;
    stack.runtime->SaveState(writer);
    stack.apophenia->SaveState(writer);
    return writer.TakeImage();
}

void ExpectRejected(const std::vector<std::uint8_t>& image)
{
    // The restore must throw the typed error and must not be reported
    // as success on any partially-valid prefix.
    EXPECT_THROW(
        {
            rt::RuntimeOptions rt_options;
            rt_options.nodes = 2;
            rt::Runtime runtime(rt_options);
            core::Apophenia apophenia(runtime, SmallConfig());
            fault::CheckpointReader reader(image);
            runtime.LoadState(reader);
            apophenia.LoadState(reader);
        },
        fault::CheckpointError);
}

TEST(CheckpointCorruption, TruncatedImagesAreRejected)
{
    const std::vector<std::uint8_t> image = SampleImage();
    ASSERT_GT(image.size(), 64u);
    // Cut inside the header, inside a section frame, and inside the
    // trailing payload.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{7}, std::size_t{15},
          image.size() / 3, image.size() / 2, image.size() - 1}) {
        SCOPED_TRACE("keep " + std::to_string(keep));
        ExpectRejected(std::vector<std::uint8_t>(
            image.begin(),
            image.begin() + static_cast<std::ptrdiff_t>(keep)));
    }
}

TEST(CheckpointCorruption, BitFlippedImagesAreRejected)
{
    const std::vector<std::uint8_t> image = SampleImage();
    // Flip one bit in the magic, the version, a section frame, and
    // several payload positions: the checksum (or header check) must
    // catch every one of them.
    for (const std::size_t at :
         {std::size_t{3}, std::size_t{12}, std::size_t{24},
          image.size() / 4, image.size() / 2, image.size() - 9}) {
        SCOPED_TRACE("flip at " + std::to_string(at));
        std::vector<std::uint8_t> corrupt = image;
        corrupt[at] ^= 0x20;
        ExpectRejected(corrupt);
    }
}

TEST(CheckpointCorruption, WrongSectionTagIsRejected)
{
    fault::CheckpointWriter writer;
    writer.BeginSection(fault::SectionTag::kCandidateTrie);
    writer.U64(42);
    writer.EndSection();
    fault::CheckpointReader reader(writer.Image());
    EXPECT_THROW(reader.BeginSection(fault::SectionTag::kTraceCache),
                 fault::CheckpointError);
}

TEST(CheckpointCorruption, SaveRequiresQuiescentRuntime)
{
    rt::Runtime runtime;
    const rt::RegionId r = runtime.CreateRegion();
    runtime.BeginTrace(7);
    runtime.ExecuteTask(rt::TaskLaunch{
        1, {{r, 0, rt::Privilege::kReadWrite, 0}}});
    EXPECT_FALSE(runtime.Quiescent());
    fault::CheckpointWriter writer;
    EXPECT_THROW(runtime.SaveState(writer), fault::CheckpointError);
}

TEST(CheckpointCorruption, LoadRequiresFreshTargets)
{
    const std::vector<std::uint8_t> image = SampleImage();
    // A used runtime must refuse to restore over itself.
    rt::RuntimeOptions rt_options;
    rt_options.nodes = 2;
    rt::Runtime used(rt_options);
    const rt::RegionId r = used.CreateRegion();
    used.ExecuteTask(rt::TaskLaunch{
        1, {{r, 0, rt::Privilege::kReadWrite, 0}}});
    fault::CheckpointReader reader(image);
    EXPECT_THROW(used.LoadState(reader), fault::CheckpointError);
}

// ---------------------------------------------------------------------------
// MiningCache round-trip.

TEST(MiningCacheCheckpoint, PublishedWindowsRoundTrip)
{
    core::MiningCache cache;
    const std::vector<rt::TokenHash> window{11, 22, 33, 11, 22, 33};
    const core::MiningCache::Key key = core::MiningCache::KeyOf(
        std::span<const rt::TokenHash>(window));
    core::MiningCache::Claim claim = cache.AcquireOrBegin(
        key, std::span<const rt::TokenHash>(window));
    ASSERT_TRUE(claim.miner);
    cache.Publish(key, std::span<const rt::TokenHash>(window),
                  {core::CandidateTrace{{11, 22, 33}, 2.0}});

    fault::CheckpointWriter writer;
    cache.SaveState(writer);

    core::MiningCache restored;
    fault::CheckpointReader reader(writer.Image());
    restored.LoadState(reader);
    EXPECT_TRUE(reader.AtEnd());
    EXPECT_EQ(restored.Size(), cache.Size());
    // A restored entry still serves hits, with identical contents.
    const core::MiningCache::Claim hit = restored.AcquireOrBegin(
        key, std::span<const rt::TokenHash>(window));
    ASSERT_NE(hit.results, nullptr);
    EXPECT_FALSE(hit.miner);
    ASSERT_EQ(hit.results->size(), 1u);
    EXPECT_EQ(hit.results->front().tokens,
              (std::vector<rt::TokenHash>{11, 22, 33}));
    // Counters carried over (plus the probe above).
    EXPECT_EQ(restored.Snapshot().windows, cache.Snapshot().windows);
    EXPECT_EQ(restored.Snapshot().misses, cache.Snapshot().misses);
    EXPECT_EQ(restored.Snapshot().hits, cache.Snapshot().hits + 1);
}

TEST(MiningCacheCheckpoint, InProgressMinerBlocksSave)
{
    core::MiningCache cache;
    const std::vector<rt::TokenHash> window{5, 6, 7};
    const core::MiningCache::Key key = core::MiningCache::KeyOf(
        std::span<const rt::TokenHash>(window));
    const core::MiningCache::Claim claim = cache.AcquireOrBegin(
        key, std::span<const rt::TokenHash>(window));
    ASSERT_TRUE(claim.miner);  // un-published: the cache is not quiescent
    fault::CheckpointWriter writer;
    EXPECT_THROW(cache.SaveState(writer), fault::CheckpointError);
    cache.Abandon(key);
}

TEST(MiningCacheCheckpoint, LoadRequiresFreshCache)
{
    core::MiningCache cache;
    const std::vector<rt::TokenHash> window{1, 2, 3};
    const core::MiningCache::Key key = core::MiningCache::KeyOf(
        std::span<const rt::TokenHash>(window));
    core::MiningCache::Claim claim = cache.AcquireOrBegin(
        key, std::span<const rt::TokenHash>(window));
    ASSERT_TRUE(claim.miner);
    cache.Publish(key, std::span<const rt::TokenHash>(window),
                  {core::CandidateTrace{{1, 2, 3}, 2.0}});
    fault::CheckpointWriter writer;
    cache.SaveState(writer);
    fault::CheckpointReader reader(writer.Image());
    EXPECT_THROW(cache.LoadState(reader), fault::CheckpointError);
}

/** Run `fn`, expect a CheckpointError, and assert its message
 * contains every needle — the diagnostics contract: name the failing
 * section (by name and tag) and the byte offset, and keep truncation
 * distinguishable from corruption. */
template <typename Fn>
void ExpectErrorMentions(Fn&& fn,
                         std::initializer_list<std::string_view> needles)
{
    try {
        fn();
        ADD_FAILURE() << "expected a fault::CheckpointError";
    } catch (const fault::CheckpointError& error) {
        const std::string what = error.what();
        for (const std::string_view needle : needles) {
            EXPECT_NE(what.find(needle), std::string::npos)
                << "missing \"" << needle << "\" in: " << what;
        }
    }
}

TEST(CheckpointDiagnostics, MessagesNameSectionTagAndOffset)
{
    // Image layout: 16-byte header, 24-byte section frame (tag at
    // offset 16), 16 payload bytes at offset 40 — 56 bytes total.
    fault::CheckpointWriter writer;
    writer.BeginSection(fault::SectionTag::kTraceCache);
    writer.U64(1);
    writer.U64(2);
    writer.EndSection();
    const std::vector<std::uint8_t> image = writer.Image();
    ASSERT_EQ(image.size(), 56u);

    // Wrong tag: both sections named, with numbers, at the frame's
    // offset.
    ExpectErrorMentions(
        [&] {
            fault::CheckpointReader reader(image);
            reader.BeginSection(fault::SectionTag::kMiningCache);
        },
        {"tag mismatch", "'mining-cache' (tag 13)",
         "'trace-cache' (tag 5)", "byte offset 16"});

    // Truncated payload: the claimed length vs what remains, called
    // truncation (a crashed writer) — not a checksum mismatch.
    ExpectErrorMentions(
        [&] {
            const std::vector<std::uint8_t> cut(image.begin(),
                                                image.end() - 8);
            fault::CheckpointReader reader(cut);
            reader.BeginSection(fault::SectionTag::kTraceCache);
        },
        {"'trace-cache' (tag 5)", "truncated", "claims 16 bytes",
         "8 remain", "byte offset 40"});

    // A flipped payload bit: a checksum mismatch (bit rot), not a
    // truncation.
    ExpectErrorMentions(
        [&] {
            std::vector<std::uint8_t> corrupt = image;
            corrupt[55] ^= 0x01;
            fault::CheckpointReader reader(corrupt);
            reader.BeginSection(fault::SectionTag::kTraceCache);
        },
        {"'trace-cache' (tag 5)", "checksum mismatch",
         "16 payload bytes", "byte offset 40"});

    // Over-read: the section is named with both the read position and
    // the section end.
    ExpectErrorMentions(
        [&] {
            fault::CheckpointReader reader(image);
            reader.BeginSection(fault::SectionTag::kTraceCache);
            reader.U64();
            reader.U64();
            reader.U64();
        },
        {"past the end", "'trace-cache' (tag 5)", "byte offset 56",
         "ends at 56"});

    // Under-read: EndSection names the section and where the reader
    // stopped.
    ExpectErrorMentions(
        [&] {
            fault::CheckpointReader reader(image);
            reader.BeginSection(fault::SectionTag::kTraceCache);
            reader.U64();
            reader.EndSection();
        },
        {"not fully consumed", "'trace-cache' (tag 5)",
         "byte offset 48", "ends at 56"});
}

TEST(CheckpointDiagnostics, SectionNamesCoverEveryTag)
{
    for (std::uint64_t raw = 1; raw <= 14; ++raw) {
        EXPECT_NE(
            fault::SectionName(static_cast<fault::SectionTag>(raw)),
            "unknown")
            << "tag " << raw;
    }
    EXPECT_EQ(fault::SectionName(static_cast<fault::SectionTag>(99)),
              "unknown");
}

}  // namespace
}  // namespace apo
