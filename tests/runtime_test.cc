/**
 * @file
 * Tests for the mini task runtime: the dependence analyzer's coherence
 * model, the region allocator's reuse policy, and the tracing engine's
 * record/validate/replay contract.
 *
 * The central integration property: a stream executed with trace
 * replays must produce exactly the same dependence graph as the same
 * stream executed under full dynamic analysis.
 */
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "runtime/runtime.h"
#include "support/rng.h"

namespace apo::rt {
namespace {

TaskLaunch Read(RegionId r, TaskId id = 1)
{
    return TaskLaunch{id, {{r, 0, Privilege::kReadOnly, 0}}};
}

TaskLaunch Write(RegionId r, TaskId id = 2)
{
    return TaskLaunch{id, {{r, 0, Privilege::kReadWrite, 0}}};
}

TaskLaunch Reduce(RegionId r, ReductionOpId op, TaskId id = 3)
{
    return TaskLaunch{id, {{r, 0, Privilege::kReduce, op}}};
}

std::set<std::size_t> Sources(const OpView& op)
{
    std::set<std::size_t> out;
    for (const Dependence& d : op.dependences) {
        out.insert(d.from);
    }
    return out;
}

/** True iff a dependence path from op `from` to op `to` exists. */
bool Reaches(const OperationLog& log, std::size_t from,
             std::size_t to)
{
    std::vector<bool> reached(log.size(), false);
    reached[from] = true;
    for (std::size_t i = from + 1; i <= to; ++i) {
        for (const Dependence& d : log[i].dependences) {
            if (reached[d.from]) {
                reached[i] = true;
                break;
            }
        }
    }
    return reached[to];
}

TEST(DependenceAnalyzer, ReadAfterWrite)
{
    Runtime rt;
    const RegionId r = rt.CreateRegion();
    rt.ExecuteTask(Write(r));
    rt.ExecuteTask(Read(r));
    ASSERT_EQ(rt.Log().size(), 2u);
    EXPECT_TRUE(rt.Log()[0].dependences.empty());
    ASSERT_EQ(rt.Log()[1].dependences.size(), 1u);
    EXPECT_EQ(rt.Log()[1].dependences[0].from, 0u);
    EXPECT_EQ(rt.Log()[1].dependences[0].kind, DependenceKind::kTrue);
}

TEST(DependenceAnalyzer, ParallelReadsDoNotDepend)
{
    Runtime rt;
    const RegionId r = rt.CreateRegion();
    rt.ExecuteTask(Write(r));
    rt.ExecuteTask(Read(r));
    rt.ExecuteTask(Read(r));
    // Both reads depend only on the write, not on each other.
    EXPECT_EQ(Sources(rt.Log()[1]), (std::set<std::size_t>{0}));
    EXPECT_EQ(Sources(rt.Log()[2]), (std::set<std::size_t>{0}));
}

TEST(DependenceAnalyzer, WriteAfterReadsIsAnti)
{
    Runtime rt;
    const RegionId r = rt.CreateRegion();
    rt.ExecuteTask(Write(r));
    rt.ExecuteTask(Read(r));
    rt.ExecuteTask(Read(r));
    rt.ExecuteTask(Write(r));
    const OpView w2 = rt.Log()[3];
    EXPECT_EQ(Sources(w2), (std::set<std::size_t>{0, 1, 2}));
    for (const Dependence& d : w2.dependences) {
        if (d.from != 0) {
            EXPECT_EQ(d.kind, DependenceKind::kAnti);
        }
    }
}

TEST(DependenceAnalyzer, WriteDiscardStillOrdersButIsOutput)
{
    Runtime rt;
    const RegionId r = rt.CreateRegion();
    rt.ExecuteTask(Write(r));
    TaskLaunch discard{5, {{r, 0, Privilege::kWriteDiscard, 0}}};
    rt.ExecuteTask(discard);
    ASSERT_EQ(rt.Log()[1].dependences.size(), 1u);
    EXPECT_EQ(rt.Log()[1].dependences[0].kind, DependenceKind::kOutput);
}

TEST(DependenceAnalyzer, SameOpReductionsCommute)
{
    Runtime rt;
    const RegionId r = rt.CreateRegion();
    rt.ExecuteTask(Write(r));
    rt.ExecuteTask(Reduce(r, /*op=*/7));
    rt.ExecuteTask(Reduce(r, /*op=*/7));
    // Second reduction depends on the writer but not the first
    // reduction (they commute).
    EXPECT_EQ(Sources(rt.Log()[2]), (std::set<std::size_t>{0}));
    // A subsequent read waits for both reductions.
    rt.ExecuteTask(Read(r));
    EXPECT_EQ(Sources(rt.Log()[3]), (std::set<std::size_t>{0, 1, 2}));
}

TEST(DependenceAnalyzer, DifferentOpReductionsSerialize)
{
    Runtime rt;
    const RegionId r = rt.CreateRegion();
    rt.ExecuteTask(Reduce(r, 7));
    rt.ExecuteTask(Reduce(r, 8));
    EXPECT_EQ(Sources(rt.Log()[1]), (std::set<std::size_t>{0}));
}

TEST(DependenceAnalyzer, MultiRequirementEdgesAreDeduplicated)
{
    Runtime rt;
    const RegionId a = rt.CreateRegion();
    const RegionId b = rt.CreateRegion();
    TaskLaunch w{9,
                 {{a, 0, Privilege::kReadWrite, 0},
                  {b, 0, Privilege::kReadWrite, 0}}};
    rt.ExecuteTask(w);
    TaskLaunch rw{10,
                  {{a, 0, Privilege::kReadOnly, 0},
                   {b, 0, Privilege::kReadWrite, 0}}};
    rt.ExecuteTask(rw);
    // One edge to op 0, not two; true dependence wins the upgrade.
    ASSERT_EQ(rt.Log()[1].dependences.size(), 1u);
    EXPECT_EQ(rt.Log()[1].dependences[0].kind, DependenceKind::kTrue);
}

TEST(DependenceAnalyzer, DistinctFieldsAreIndependent)
{
    Runtime rt;
    const RegionId r = rt.CreateRegion();
    TaskLaunch w0{1, {{r, 0, Privilege::kReadWrite, 0}}};
    TaskLaunch w1{2, {{r, 1, Privilege::kReadWrite, 0}}};
    rt.ExecuteTask(w0);
    rt.ExecuteTask(w1);
    EXPECT_TRUE(rt.Log()[1].dependences.empty());
}

TEST(DependenceAnalyzer, SerializabilityOnRandomStreams)
{
    // Property: any two operations that conflict on some field must be
    // connected by a dependence path.
    support::Rng rng(2024);
    Runtime rt;
    std::vector<RegionId> regions;
    for (int i = 0; i < 4; ++i) {
        regions.push_back(rt.CreateRegion());
    }
    for (int i = 0; i < 120; ++i) {
        TaskLaunch t;
        t.task = rng.UniformInt(1, 5);
        const int nreqs = static_cast<int>(rng.UniformInt(1, 2));
        for (int q = 0; q < nreqs; ++q) {
            RegionRequirement req;
            req.region = regions[rng.UniformInt(0, regions.size() - 1)];
            const auto p = rng.UniformInt(0, 3);
            req.privilege = static_cast<Privilege>(p);
            req.redop = req.privilege == Privilege::kReduce
                            ? static_cast<ReductionOpId>(
                                  rng.UniformInt(1, 2))
                            : 0;
            t.requirements.push_back(req);
        }
        rt.ExecuteTask(t);
    }
    const auto& log = rt.Log();
    auto conflicts = [](const OpView& a, const OpView& b) {
        for (const auto& x : a.launch.Requirements()) {
            for (const auto& y : b.launch.Requirements()) {
                if (x.region != y.region || x.field != y.field) {
                    continue;
                }
                if (!IsMutating(x.privilege) && !IsMutating(y.privilege)) {
                    continue;  // two reads never conflict
                }
                if (x.privilege == Privilege::kReduce &&
                    y.privilege == Privilege::kReduce &&
                    x.redop == y.redop) {
                    continue;  // commuting reductions
                }
                return true;
            }
        }
        return false;
    };
    for (std::size_t i = 0; i < log.size(); ++i) {
        for (std::size_t j = i + 1; j < log.size(); ++j) {
            if (conflicts(log[i], log[j])) {
                ASSERT_TRUE(Reaches(log, i, j))
                    << "ops " << i << " and " << j
                    << " conflict but are unordered";
            }
        }
    }
}

TEST(RegionAllocator, ReusesMostRecentlyFreedId)
{
    Runtime rt;
    const RegionId a = rt.CreateRegion();
    const RegionId b = rt.CreateRegion();
    rt.DestroyRegion(b);
    rt.DestroyRegion(a);
    EXPECT_EQ(rt.CreateRegion(), a);
    EXPECT_EQ(rt.CreateRegion(), b);
    EXPECT_NE(rt.CreateRegion(), a);
}

TEST(Tracing, RecordThenReplayCountsAndCosts)
{
    Runtime rt;
    const RegionId r = rt.CreateRegion();
    for (int iter = 0; iter < 3; ++iter) {
        rt.BeginTrace(1);
        rt.ExecuteTask(Write(r));
        rt.ExecuteTask(Read(r));
        rt.EndTrace(1);
    }
    EXPECT_EQ(rt.Stats().traces_recorded, 1u);
    EXPECT_EQ(rt.Stats().trace_replays, 2u);
    EXPECT_EQ(rt.Stats().tasks_recorded, 2u);
    EXPECT_EQ(rt.Stats().tasks_replayed, 4u);
    // Replayed tasks are charged α_r (plus c on the head), far less
    // than the full analysis α.
    const OpView head = rt.Log()[2];
    EXPECT_TRUE(head.replay_head);
    EXPECT_DOUBLE_EQ(head.analysis_cost_us,
                     rt.Costs().replay_us + rt.Costs().replay_constant_us);
    const OpView body = rt.Log()[3];
    EXPECT_DOUBLE_EQ(body.analysis_cost_us, rt.Costs().replay_us);
    EXPECT_LT(body.analysis_cost_us, rt.Costs().analysis_us);
}

/** Drive `issue` against a traced and an untraced runtime and compare
 * the dependence graphs operation by operation. */
template <typename IssueFn>
void ExpectReplayMatchesFreshAnalysis(IssueFn issue)
{
    Runtime traced, fresh;
    issue(traced, /*use_traces=*/true);
    issue(fresh, /*use_traces=*/false);
    ASSERT_EQ(traced.Log().size(), fresh.Log().size());
    for (std::size_t i = 0; i < traced.Log().size(); ++i) {
        EXPECT_EQ(traced.Log()[i].token, fresh.Log()[i].token) << "op " << i;
        EXPECT_EQ(traced.Log()[i].dependences, fresh.Log()[i].dependences)
            << "dependence divergence at op " << i;
    }
    EXPECT_GT(traced.Stats().tasks_replayed, 0u);
}

TEST(Tracing, ReplayedGraphEqualsFreshAnalysisSimpleLoop)
{
    ExpectReplayMatchesFreshAnalysis([](Runtime& rt, bool use_traces) {
        const RegionId a = rt.CreateRegion();
        const RegionId b = rt.CreateRegion();
        for (int iter = 0; iter < 5; ++iter) {
            if (use_traces) {
                rt.BeginTrace(1);
            }
            rt.ExecuteTask(TaskLaunch{
                1,
                {{a, 0, Privilege::kReadOnly, 0},
                 {b, 0, Privilege::kReadWrite, 0}}});
            rt.ExecuteTask(TaskLaunch{
                2,
                {{b, 0, Privilege::kReadOnly, 0},
                 {a, 0, Privilege::kReadWrite, 0}}});
            if (use_traces) {
                rt.EndTrace(1);
            }
        }
    });
}

TEST(Tracing, ReplayedGraphEqualsFreshAnalysisWithBoundaryWork)
{
    // Untraced operations interleave with trace replays, so boundary
    // (cross-fragment) edges must be regenerated correctly each time.
    ExpectReplayMatchesFreshAnalysis([](Runtime& rt, bool use_traces) {
        const RegionId a = rt.CreateRegion();
        const RegionId b = rt.CreateRegion();
        const RegionId c = rt.CreateRegion();
        for (int iter = 0; iter < 6; ++iter) {
            // Irregular untraced op touching the traced data.
            if (iter % 2 == 0) {
                rt.ExecuteTask(TaskLaunch{
                    9,
                    {{a, 0, Privilege::kReadWrite, 0},
                     {c, 0, Privilege::kReadWrite, 0}}});
            }
            if (use_traces) {
                rt.BeginTrace(2);
            }
            rt.ExecuteTask(TaskLaunch{
                1,
                {{a, 0, Privilege::kReadOnly, 0},
                 {b, 0, Privilege::kReduce, 3}}});
            rt.ExecuteTask(TaskLaunch{
                2,
                {{a, 0, Privilege::kReadOnly, 0},
                 {b, 0, Privilege::kReduce, 3}}});
            rt.ExecuteTask(TaskLaunch{
                3,
                {{b, 0, Privilege::kReadOnly, 0},
                 {a, 0, Privilege::kReadWrite, 0}}});
            if (use_traces) {
                rt.EndTrace(2);
            }
        }
    });
}

TEST(Tracing, ReplayedGraphEqualsFreshAnalysisRandomized)
{
    // Randomized fragment bodies (fixed per trace id) replayed in
    // random interleavings with untraced noise.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        ExpectReplayMatchesFreshAnalysis(
            [seed](Runtime& rt, bool use_traces) {
                support::Rng rng(seed);
                std::vector<RegionId> regions;
                for (int i = 0; i < 3; ++i) {
                    regions.push_back(rt.CreateRegion());
                }
                auto random_task = [&](support::Rng& gen) {
                    TaskLaunch t;
                    t.task = gen.UniformInt(1, 4);
                    RegionRequirement req;
                    req.region =
                        regions[gen.UniformInt(0, regions.size() - 1)];
                    req.privilege =
                        static_cast<Privilege>(gen.UniformInt(0, 2));
                    t.requirements.push_back(req);
                    return t;
                };
                // A fixed body for the trace, derived from the seed.
                support::Rng body_rng(seed * 977);
                std::vector<TaskLaunch> body;
                for (int i = 0; i < 4; ++i) {
                    body.push_back(random_task(body_rng));
                }
                for (int iter = 0; iter < 10; ++iter) {
                    if (rng.Bernoulli(0.4)) {
                        rt.ExecuteTask(random_task(rng));
                    }
                    if (use_traces) {
                        rt.BeginTrace(7);
                    }
                    for (const TaskLaunch& t : body) {
                        rt.ExecuteTask(t);
                    }
                    if (use_traces) {
                        rt.EndTrace(7);
                    }
                }
            });
    }
}

TEST(Tracing, MismatchThrowsUnderStrictPolicy)
{
    Runtime rt;
    const RegionId a = rt.CreateRegion();
    const RegionId b = rt.CreateRegion();
    rt.BeginTrace(1);
    rt.ExecuteTask(Read(a));
    rt.EndTrace(1);
    rt.BeginTrace(1);
    EXPECT_THROW(rt.ExecuteTask(Read(b)), TraceMismatchError);
}

TEST(Tracing, ShortReplayThrowsAtEnd)
{
    Runtime rt;
    const RegionId a = rt.CreateRegion();
    rt.BeginTrace(1);
    rt.ExecuteTask(Read(a));
    rt.ExecuteTask(Read(a));
    rt.EndTrace(1);
    rt.BeginTrace(1);
    rt.ExecuteTask(Read(a));
    EXPECT_THROW(rt.EndTrace(1), TraceMismatchError);
}

TEST(Tracing, FallbackPolicyAnalyzesInsteadOfThrowing)
{
    RuntimeOptions options;
    options.mismatch_policy = MismatchPolicy::kFallback;
    Runtime rt(options);
    const RegionId a = rt.CreateRegion();
    const RegionId b = rt.CreateRegion();
    rt.BeginTrace(1);
    rt.ExecuteTask(Write(a));
    rt.EndTrace(1);
    rt.BeginTrace(1);
    rt.ExecuteTask(Write(b));  // deviates: falls back to analysis
    rt.ExecuteTask(Read(b));
    rt.EndTrace(1);
    EXPECT_EQ(rt.Stats().trace_mismatches, 1u);
    EXPECT_EQ(rt.Stats().tasks_analyzed, 2u);
    // The dependence graph is still correct.
    ASSERT_EQ(rt.Log().back().dependences.size(), 1u);
    EXPECT_EQ(rt.Log().back().dependences[0].from, 1u);
}

TEST(Tracing, UsageErrors)
{
    Runtime rt;
    EXPECT_THROW(rt.BeginTrace(kNoTrace), RuntimeUsageError);
    EXPECT_THROW(rt.EndTrace(1), RuntimeUsageError);
    rt.BeginTrace(1);
    EXPECT_THROW(rt.BeginTrace(2), RuntimeUsageError);
    EXPECT_THROW(rt.EndTrace(2), RuntimeUsageError);
}

TEST(Tracing, AnalysisCostScalesWithNodeCount)
{
    RuntimeOptions one_node;
    one_node.nodes = 1;
    RuntimeOptions many_nodes;
    many_nodes.nodes = 16;
    Runtime one(one_node);
    Runtime many(many_nodes);
    EXPECT_GT(many.ScaledAnalysisUs(), one.ScaledAnalysisUs());
    EXPECT_DOUBLE_EQ(one.ScaledAnalysisUs(), one.Costs().analysis_us);
}

TEST(Tokens, HashCapturesAnalysisRelevantStateOnly)
{
    const RegionId a{1}, b{2};
    TaskLaunch t1{1, {{a, 0, Privilege::kReadOnly, 0}}};
    TaskLaunch t2 = t1;
    t2.execution_us = 999.0;  // execution hints don't affect analysis
    t2.shard = 3;
    EXPECT_EQ(HashLaunch(t1), HashLaunch(t2));
    TaskLaunch t3 = t1;
    t3.requirements[0].region = b;
    EXPECT_NE(HashLaunch(t1), HashLaunch(t3));
    TaskLaunch t4 = t1;
    t4.requirements[0].privilege = Privilege::kReadWrite;
    EXPECT_NE(HashLaunch(t1), HashLaunch(t4));
    TaskLaunch t5 = t1;
    t5.task = 2;
    EXPECT_NE(HashLaunch(t1), HashLaunch(t5));
}

/** The paper's section 2 example: a cuPyNumeric-style Jacobi loop
 * whose loop-carried variable rebinds to a fresh region each
 * iteration, making the task stream 2-periodic rather than
 * 1-periodic. */
void IssueJacobiIteration(Runtime& rt, RegionId R, RegionId b, RegionId d,
                          RegionId& x)
{
    // t1 = DOT(R, x); allocate result region.
    const RegionId t1 = rt.CreateRegion();
    rt.ExecuteTask(TaskLaunch{TaskIdOf("DOT"),
                              {{R, 0, Privilege::kReadOnly, 0},
                               {x, 0, Privilege::kReadOnly, 0},
                               {t1, 0, Privilege::kWriteDiscard, 0}}});
    // t2 = SUB(b, t1).
    const RegionId t2 = rt.CreateRegion();
    rt.ExecuteTask(TaskLaunch{TaskIdOf("SUB"),
                              {{b, 0, Privilege::kReadOnly, 0},
                               {t1, 0, Privilege::kReadOnly, 0},
                               {t2, 0, Privilege::kWriteDiscard, 0}}});
    // t1 dies after SUB; cuPyNumeric-style eager collection frees it
    // immediately, making its id available for the next allocation.
    rt.DestroyRegion(t1);
    // x' = DIV(t2, d); the old x dies and is immediately reusable.
    const RegionId x_new = rt.CreateRegion();
    rt.ExecuteTask(TaskLaunch{TaskIdOf("DIV"),
                              {{t2, 0, Privilege::kReadOnly, 0},
                               {d, 0, Privilege::kReadOnly, 0},
                               {x_new, 0, Privilege::kWriteDiscard, 0}}});
    rt.DestroyRegion(t2);
    rt.DestroyRegion(x);
    x = x_new;
}

TEST(JacobiExample, NaiveOneIterationTraceIsInvalid)
{
    Runtime rt;
    const RegionId R = rt.CreateRegion();
    const RegionId b = rt.CreateRegion();
    const RegionId d = rt.CreateRegion();
    RegionId x = rt.CreateRegion();
    // Warm up one iteration so the allocator reaches its steady state.
    IssueJacobiIteration(rt, R, b, d, x);
    // Annotating one loop iteration records iteration i...
    rt.BeginTrace(1);
    IssueJacobiIteration(rt, R, b, d, x);
    rt.EndTrace(1);
    // ...but iteration i+1 issues different region arguments.
    rt.BeginTrace(1);
    EXPECT_THROW(IssueJacobiIteration(rt, R, b, d, x), TraceMismatchError);
}

TEST(JacobiExample, TwoIterationTraceIsValid)
{
    Runtime rt;
    const RegionId R = rt.CreateRegion();
    const RegionId b = rt.CreateRegion();
    const RegionId d = rt.CreateRegion();
    RegionId x = rt.CreateRegion();
    IssueJacobiIteration(rt, R, b, d, x);  // warm up
    for (int pair = 0; pair < 4; ++pair) {
        rt.BeginTrace(1);
        IssueJacobiIteration(rt, R, b, d, x);
        IssueJacobiIteration(rt, R, b, d, x);
        rt.EndTrace(1);
    }
    EXPECT_EQ(rt.Stats().traces_recorded, 1u);
    EXPECT_EQ(rt.Stats().trace_replays, 3u);
}

}  // namespace
}  // namespace apo::rt
