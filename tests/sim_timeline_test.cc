/**
 * @file
 * Tests for the Chrome trace-event timeline export.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "sim/timeline.h"

namespace apo::sim {
namespace {

TEST(Timeline, EmptyLogProducesEmptyArray)
{
    PipelineResult result;
    PipelineOptions options;
    EXPECT_EQ(ChromeTraceJson({}, result, options), "[\n]\n");
}

TEST(Timeline, EventsCarryModeTraceAndTiming)
{
    rt::Runtime runtime;
    const rt::RegionId r = runtime.CreateRegion();
    for (int i = 0; i < 3; ++i) {
        runtime.BeginTrace(1);
        runtime.ExecuteTask(rt::TaskLaunch{
            7, {{r, 0, rt::Privilege::kReadWrite, 0}}, 500.0, 1});
        runtime.EndTrace(1);
    }
    PipelineOptions options;
    options.machine.nodes = 1;
    options.machine.gpus_per_node = 2;
    const PipelineResult result =
        SimulatePipeline(runtime.Log(), options);
    const std::string json =
        ChromeTraceJson(runtime.Log(), result, options);
    EXPECT_NE(json.find("\"cat\":\"recorded\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"replayed\""), std::string::npos);
    EXPECT_NE(json.find("\"trace\":1"), std::string::npos);
    EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":500"), std::string::npos);
    // Valid JSON array (crude but effective checks).
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json[json.size() - 2], ']');
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace apo::sim
