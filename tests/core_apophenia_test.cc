/**
 * @file
 * End-to-end tests of the Apophenia front-end against the mini
 * runtime: stream preservation, automatic trace discovery and replay,
 * the section 2 Jacobi pathology, configuration effects, and the
 * steady-state behaviour the paper's evaluation relies on.
 */
#include <gtest/gtest.h>

#include <vector>

#include "core/apophenia.h"
#include "support/rng.h"

namespace apo::core {
namespace {

/** A small test application: a k-task loop over rotating regions with
 * optional noise tasks interleaved. */
class LoopApp {
  public:
    LoopApp(Apophenia& front_end, std::size_t body_tasks)
        : fe_(&front_end), body_tasks_(body_tasks)
    {
        for (std::size_t i = 0; i < body_tasks; ++i) {
            regions_.push_back(fe_->CreateRegion());
        }
    }

    void Iteration()
    {
        for (std::size_t i = 0; i < body_tasks_; ++i) {
            const rt::RegionId in = regions_[i];
            const rt::RegionId out = regions_[(i + 1) % body_tasks_];
            fe_->ExecuteTask(rt::TaskLaunch{
                100 + i,
                {{in, 0, rt::Privilege::kReadOnly, 0},
                 {out, 0, rt::Privilege::kReadWrite, 0}}});
        }
    }

    void Noise(std::uint64_t salt)
    {
        fe_->ExecuteTask(rt::TaskLaunch{
            999 + salt, {{regions_[0], 0, rt::Privilege::kReadOnly, 0}}});
    }

  private:
    Apophenia* fe_;
    std::size_t body_tasks_;
    std::vector<rt::RegionId> regions_;
};

ApopheniaConfig SmallConfig()
{
    ApopheniaConfig config;
    config.min_trace_length = 5;
    config.batchsize = 500;
    config.multi_scale_factor = 50;
    return config;
}

TEST(Apophenia, ForwardsExactStreamInOrder)
{
    // The front-end may regroup tasks into traces but must forward
    // exactly the same launches in exactly the same order.
    rt::Runtime runtime;
    Apophenia fe(runtime, SmallConfig());
    LoopApp app(fe, 10);
    for (int iter = 0; iter < 60; ++iter) {
        app.Iteration();
    }
    fe.Flush();
    ASSERT_EQ(runtime.Log().size(), 600u);
    // Recompute the expected token stream with an identical app run
    // against a bare runtime.
    rt::Runtime bare;
    ApopheniaConfig off;
    off.enabled = false;
    Apophenia passthrough(bare, off);
    LoopApp app2(passthrough, 10);
    for (int iter = 0; iter < 60; ++iter) {
        app2.Iteration();
    }
    for (std::size_t i = 0; i < 600; ++i) {
        ASSERT_EQ(runtime.Log()[i].token, bare.Log()[i].token)
            << "stream reordered at op " << i;
    }
}

TEST(Apophenia, DiscoversAndReplaysSimpleLoop)
{
    rt::Runtime runtime;
    Apophenia fe(runtime, SmallConfig());
    LoopApp app(fe, 10);
    for (int iter = 0; iter < 100; ++iter) {
        app.Iteration();
    }
    fe.Flush();
    EXPECT_GT(fe.Stats().traces_fired, 5u);
    EXPECT_GT(runtime.Stats().tasks_replayed, 500u);
    // Steady state: the tail of the run should be almost entirely
    // replayed (paper figure 10's plateau).
    std::size_t tail_replayed = 0;
    const auto& log = runtime.Log();
    for (std::size_t i = log.size() - 200; i < log.size(); ++i) {
        tail_replayed += log[i].mode == rt::AnalysisMode::kReplayed;
    }
    EXPECT_GE(tail_replayed, 160u);
}

TEST(Apophenia, ReplayedAnalysisEqualsFreshAnalysis)
{
    // The dependence graph under automatic tracing must be identical
    // to the untraced graph — tracing is an optimization, not a
    // semantic change.
    auto run = [](bool enabled) {
        auto runtime = std::make_unique<rt::Runtime>();
        ApopheniaConfig config = SmallConfig();
        config.enabled = enabled;
        Apophenia fe(*runtime, config);
        LoopApp app(fe, 8);
        for (int iter = 0; iter < 80; ++iter) {
            app.Iteration();
            if (iter % 7 == 0) {
                app.Noise(0);
            }
        }
        fe.Flush();
        return runtime;
    };
    const auto traced = run(true);
    const auto untraced = run(false);
    ASSERT_EQ(traced->Log().size(), untraced->Log().size());
    for (std::size_t i = 0; i < traced->Log().size(); ++i) {
        ASSERT_EQ(traced->Log()[i].token, untraced->Log()[i].token);
        ASSERT_EQ(traced->Log()[i].dependences,
                  untraced->Log()[i].dependences)
            << "dependence divergence at op " << i;
    }
    EXPECT_GT(traced->Stats().tasks_replayed, 0u);
}

TEST(Apophenia, NoTraceShorterThanMinLengthIsFired)
{
    rt::Runtime runtime;
    ApopheniaConfig config = SmallConfig();
    config.min_trace_length = 12;
    Apophenia fe(runtime, config);
    LoopApp app(fe, 4);  // 4-task loop: body shorter than the minimum
    for (int iter = 0; iter < 100; ++iter) {
        app.Iteration();
    }
    fe.Flush();
    // Traces may still fire (e.g. three bodies = 12 tasks), but every
    // fired trace must respect the minimum length.
    for (const auto& op : runtime.Log()) {
        if (op.replay_head) {
            const auto* tmpl = runtime.Traces().Find(op.trace);
            ASSERT_NE(tmpl, nullptr);
            EXPECT_GE(tmpl->Length(), 12u);
        }
    }
}

TEST(Apophenia, MaxTraceLengthChunksReplays)
{
    rt::Runtime runtime;
    ApopheniaConfig config = SmallConfig();
    config.min_trace_length = 5;
    config.max_trace_length = 15;
    Apophenia fe(runtime, config);
    LoopApp app(fe, 40);  // body much longer than max trace length
    for (int iter = 0; iter < 60; ++iter) {
        app.Iteration();
    }
    fe.Flush();
    EXPECT_GT(runtime.Stats().trace_replays, 0u);
    for (const auto& op : runtime.Log()) {
        if (op.replay_head) {
            const auto* tmpl = runtime.Traces().Find(op.trace);
            ASSERT_NE(tmpl, nullptr);
            EXPECT_LE(tmpl->Length(), 15u);
        }
    }
}

TEST(Apophenia, SurvivesIrregularNoiseBetweenIterations)
{
    // The paper's motivation for non-tandem repeats: convergence
    // checks interrupt the loop, yet tracing still succeeds.
    rt::Runtime runtime;
    Apophenia fe(runtime, SmallConfig());
    LoopApp app(fe, 10);
    support::Rng rng(3);
    for (int iter = 0; iter < 150; ++iter) {
        app.Iteration();
        if (iter % 9 == 0) {
            app.Noise(rng.UniformInt(0, 3));
        }
    }
    fe.Flush();
    EXPECT_GT(runtime.Stats().ReplayedFraction(), 0.5);
}

TEST(Apophenia, DisabledConfigIsTransparent)
{
    rt::Runtime runtime;
    ApopheniaConfig config;
    config.enabled = false;
    Apophenia fe(runtime, config);
    LoopApp app(fe, 6);
    for (int iter = 0; iter < 50; ++iter) {
        app.Iteration();
    }
    fe.Flush();
    EXPECT_EQ(runtime.Stats().tasks_analyzed, 300u);
    EXPECT_EQ(runtime.Stats().tasks_replayed, 0u);
    EXPECT_EQ(fe.Stats().traces_fired, 0u);
}

TEST(Apophenia, PendingBufferIsBounded)
{
    rt::Runtime runtime;
    ApopheniaConfig config = SmallConfig();
    config.max_pending = 100;
    Apophenia fe(runtime, config);
    LoopApp app(fe, 10);
    for (int iter = 0; iter < 200; ++iter) {
        app.Iteration();
        ASSERT_LE(fe.PendingTasks(), 2 * config.max_pending);
    }
    fe.Flush();
    EXPECT_LE(fe.Stats().pending_high_water, 2 * config.max_pending);
}

TEST(Apophenia, FlushForwardsEverything)
{
    rt::Runtime runtime;
    Apophenia fe(runtime, SmallConfig());
    LoopApp app(fe, 10);
    for (int iter = 0; iter < 30; ++iter) {
        app.Iteration();
    }
    fe.Flush();
    EXPECT_EQ(runtime.Log().size(), 300u);
    EXPECT_EQ(fe.PendingTasks(), 0u);
}

/** The section 2 cuPyNumeric Jacobi example, issued through Apophenia:
 * the stream is 2-periodic because of region reuse, and Apophenia must
 * discover the 2-iteration trace no human annotated. */
class JacobiApp {
  public:
    explicit JacobiApp(Apophenia& fe) : fe_(&fe)
    {
        R_ = fe_->CreateRegion();
        b_ = fe_->CreateRegion();
        d_ = fe_->CreateRegion();
        x_ = fe_->CreateRegion();
    }

    void Iteration()
    {
        const rt::RegionId t1 = fe_->CreateRegion();
        fe_->ExecuteTask(rt::TaskLaunch{
            rt::TaskIdOf("DOT"),
            {{R_, 0, rt::Privilege::kReadOnly, 0},
             {x_, 0, rt::Privilege::kReadOnly, 0},
             {t1, 0, rt::Privilege::kWriteDiscard, 0}}});
        const rt::RegionId t2 = fe_->CreateRegion();
        fe_->ExecuteTask(rt::TaskLaunch{
            rt::TaskIdOf("SUB"),
            {{b_, 0, rt::Privilege::kReadOnly, 0},
             {t1, 0, rt::Privilege::kReadOnly, 0},
             {t2, 0, rt::Privilege::kWriteDiscard, 0}}});
        fe_->DestroyRegion(t1);
        const rt::RegionId x_new = fe_->CreateRegion();
        fe_->ExecuteTask(rt::TaskLaunch{
            rt::TaskIdOf("DIV"),
            {{t2, 0, rt::Privilege::kReadOnly, 0},
             {d_, 0, rt::Privilege::kReadOnly, 0},
             {x_new, 0, rt::Privilege::kWriteDiscard, 0}}});
        fe_->DestroyRegion(t2);
        fe_->DestroyRegion(x_);
        x_ = x_new;
    }

  private:
    Apophenia* fe_;
    rt::RegionId R_, b_, d_, x_;
};

TEST(Apophenia, TracesTheJacobiPathologyAutomatically)
{
    rt::Runtime runtime;
    ApopheniaConfig config = SmallConfig();
    config.min_trace_length = 5;  // > one iteration (3 tasks)
    Apophenia fe(runtime, config);
    JacobiApp app(fe);
    for (int iter = 0; iter < 400; ++iter) {
        app.Iteration();
    }
    fe.Flush();
    // Apophenia found and replayed traces despite the region renaming
    // that defeats one-iteration manual annotations.
    EXPECT_GT(runtime.Stats().trace_replays, 10u);
    EXPECT_GT(runtime.Stats().ReplayedFraction(), 0.5);
    // Every fired trace spans an even number of iterations: the true
    // period is two iterations = 6 tasks.
    for (const auto& op : runtime.Log()) {
        if (op.replay_head) {
            const auto* tmpl = runtime.Traces().Find(op.trace);
            ASSERT_NE(tmpl, nullptr);
            EXPECT_EQ(tmpl->Length() % 6, 0u)
                << "trace length " << tmpl->Length()
                << " is not a multiple of the 2-iteration period";
        }
    }
}

TEST(Apophenia, StatsAreConsistent)
{
    rt::Runtime runtime;
    Apophenia fe(runtime, SmallConfig());
    LoopApp app(fe, 10);
    for (int iter = 0; iter < 100; ++iter) {
        app.Iteration();
    }
    fe.Flush();
    const auto& s = fe.Stats();
    EXPECT_EQ(s.tasks_observed, 1000u);
    EXPECT_EQ(s.tasks_forwarded_traced + s.tasks_forwarded_untraced, 1000u);
    EXPECT_EQ(s.traces_fired, s.trace_records + s.trace_replays);
    EXPECT_EQ(runtime.Stats().TotalTasks(), 1000u);
    EXPECT_EQ(runtime.Stats().tasks_replayed + runtime.Stats().tasks_recorded,
              s.tasks_forwarded_traced);
}

TEST(Apophenia, WorkerPoolExecutorProducesValidStream)
{
    // With a real background pool the timing of candidate ingestion is
    // nondeterministic, but the forwarded stream must always be the
    // application's stream and the graph must match fresh analysis.
    rt::Runtime runtime;
    support::WorkerPool pool(2);
    Apophenia fe(runtime, SmallConfig(), &pool);
    LoopApp app(fe, 10);
    for (int iter = 0; iter < 100; ++iter) {
        app.Iteration();
    }
    pool.Drain();
    fe.Flush();
    EXPECT_EQ(runtime.Log().size(), 1000u);
    rt::Runtime bare;
    ApopheniaConfig off;
    off.enabled = false;
    Apophenia passthrough(bare, off);
    LoopApp app2(passthrough, 10);
    for (int iter = 0; iter < 100; ++iter) {
        app2.Iteration();
    }
    for (std::size_t i = 0; i < 1000; ++i) {
        ASSERT_EQ(runtime.Log()[i].token, bare.Log()[i].token);
        ASSERT_EQ(runtime.Log()[i].dependences, bare.Log()[i].dependences);
    }
}

TEST(Apophenia, SurvivesRuntimeTemplateEviction)
{
    // A tightly bounded template cache keeps evicting what Apophenia
    // records; every fire must still be valid (re-recording when the
    // runtime forgot the template) and the stream must stay correct.
    rt::RuntimeOptions options;
    options.max_trace_templates = 1;
    rt::Runtime runtime(options);
    Apophenia fe(runtime, SmallConfig());
    LoopApp app(fe, 10);
    for (int iter = 0; iter < 120; ++iter) {
        app.Iteration();
    }
    fe.Flush();
    EXPECT_EQ(runtime.Stats().trace_mismatches, 0u);
    EXPECT_LE(runtime.Traces().Size(), 1u);
    // Tasks were still forwarded completely and in order.
    EXPECT_EQ(runtime.Stats().TotalTasks(), 1200u);
}

}  // namespace
}  // namespace apo::core
