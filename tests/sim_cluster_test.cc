/**
 * @file
 * Tests for the skew-aware cluster simulation (sim/cluster.h): the
 * agreement protocol must make every node issue a bit-identical call
 * sequence regardless of per-node analysis completion jitter *and*
 * per-node skew; the incremental StreamDigest must agree with the
 * exact retained-log comparison on identical and deliberately
 * diverged streams; straggler skew must degrade the agreed slack
 * monotonically; and a 64-node streaming run must stay under a fixed
 * resident-log ceiling while certifying agreement through the rolling
 * digests.
 *
 * The parallel execution engine's contracts are pinned here too: any
 * thread count (jobs ∈ {1, 2, 8}) yields byte-identical digests,
 * coordination stats and per-node metrics; a no-skew replicated run
 * mines each history window exactly once cluster-wide (every other
 * node adopts from the shared mining cache); and the replicated
 * streaming issue path allocates nothing per launch in steady state
 * (this TU owns the binary's counting global operator new).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "api/launch.h"
#include "apps/cfd.h"
#include "apps/flexflow.h"
#include "apps/htr.h"
#include "apps/s3d.h"
#include "apps/torchswe.h"
#include "sim/cluster.h"
#include "sim/harness.h"
#include "support/counting_allocator.h"

namespace apo::sim {
namespace {

core::ApopheniaConfig SmallConfig()
{
    core::ApopheniaConfig config;
    config.min_trace_length = 5;
    config.batchsize = 400;
    config.multi_scale_factor = 50;
    return config;
}

ClusterOptions SmallClusterOptions(std::size_t nodes)
{
    ClusterOptions options;
    options.coordination.nodes = nodes;
    options.config = SmallConfig();
    return options;
}

void DriveLoop(Cluster& fe, int iterations, int body)
{
    // Region management broadcasts to every node; the deterministic
    // per-node allocators must agree on the id.
    std::vector<rt::RegionId> regions;
    for (int i = 0; i < body; ++i) {
        regions.push_back(fe.CreateRegion());
    }
    for (int iter = 0; iter < iterations; ++iter) {
        for (int i = 0; i < body; ++i) {
            fe.ExecuteTask(rt::TaskLaunch{
                static_cast<rt::TaskId>(100 + i),
                {{regions[i], 0, rt::Privilege::kReadOnly, 0},
                 {regions[(i + 1) % body], 0, rt::Privilege::kReadWrite,
                  0}}});
        }
    }
    fe.Flush();
}

// ---------------------------------------------------------------------------
// The agreement protocol (ported from the core::ReplicatedFrontEnd
// tests — sim::Cluster is now the one replication implementation).

class ClusterProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ClusterProperty, NodesIssueIdenticalStreams)
{
    const auto [nodes, seed] = GetParam();
    ClusterOptions options =
        SmallClusterOptions(static_cast<std::size_t>(nodes));
    options.coordination.seed = seed;
    options.coordination.mean_latency_tasks = 120.0;
    options.coordination.jitter = 0.9;  // adversarial completion skew
    Cluster fe(options);
    DriveLoop(fe, /*iterations=*/80, /*body=*/10);
    EXPECT_TRUE(fe.StreamsIdentical());
    EXPECT_TRUE(fe.StreamDigestsAgree());
    // Tracing actually happened on every node.
    for (std::size_t n = 0; n < fe.Nodes(); ++n) {
        EXPECT_GT(fe.NodeRuntime(n).Stats().tasks_replayed, 0u)
            << "node " << n;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusterProperty,
    ::testing::Combine(::testing::Values(2, 3, 8),
                       ::testing::Values<std::uint64_t>(1, 7, 42)));

TEST(Cluster, SlackAdaptsToSlowAnalyses)
{
    ClusterOptions options = SmallClusterOptions(2);
    options.coordination.seed = 5;
    options.coordination.initial_slack = 1;         // far too tight
    options.coordination.mean_latency_tasks = 300;  // analyses are slow
    Cluster fe(options);
    DriveLoop(fe, 100, 10);
    const CoordinationStats& stats = fe.Coordination();
    EXPECT_GT(stats.jobs_coordinated, 0u);
    EXPECT_GT(stats.late_jobs, 0u);
    EXPECT_GT(stats.final_slack, options.coordination.initial_slack);
    EXPECT_GE(stats.peak_slack, stats.final_slack);
    EXPECT_TRUE(fe.StreamsIdentical());
}

TEST(Cluster, GenerousSlackAvoidsLateJobs)
{
    ClusterOptions options = SmallClusterOptions(2);
    options.coordination.seed = 5;
    options.coordination.initial_slack = 10000;  // above any latency
    options.coordination.mean_latency_tasks = 50;
    options.coordination.jitter = 0.5;
    Cluster fe(options);
    DriveLoop(fe, 100, 10);
    EXPECT_EQ(fe.Coordination().late_jobs, 0u);
    EXPECT_TRUE(fe.StreamsIdentical());
    // Stall-free steady state: ingestion at the agreed points.
    for (const NodeMetrics& node : fe.PerNode()) {
        EXPECT_EQ(node.stall_tasks, 0.0);
        EXPECT_EQ(node.late_jobs, 0u);
    }
}

TEST(Cluster, SingleNodeDegeneratesGracefully)
{
    Cluster fe(SmallClusterOptions(1));
    DriveLoop(fe, 50, 10);
    EXPECT_TRUE(fe.StreamsIdentical());
    EXPECT_TRUE(fe.StreamDigestsAgree());
    EXPECT_GT(fe.NodeRuntime(0).Stats().tasks_replayed, 0u);
}

TEST(Cluster, VirtualClocksMatchTaskCountWithoutSkew)
{
    Cluster fe(SmallClusterOptions(3));
    DriveLoop(fe, 40, 10);
    const double issued =
        static_cast<double>(fe.Stats().tasks_executed);
    for (const NodeMetrics& node : fe.PerNode()) {
        EXPECT_DOUBLE_EQ(node.virtual_time_tasks, issued);
    }
}

// ---------------------------------------------------------------------------
// Incremental digest vs. exact retained comparison.

TEST(StreamDigest, AgreesWithExactComparisonOnIdenticalStreams)
{
    Cluster fe(SmallClusterOptions(3));
    DriveLoop(fe, 60, 8);
    EXPECT_TRUE(fe.StreamsIdentical());
    EXPECT_TRUE(fe.StreamDigestsAgree());
    EXPECT_EQ(fe.NodeDigest(0).Count(),
              fe.NodeRuntime(0).Log().size());
}

TEST(StreamDigest, DetectsDeliberateDivergence)
{
    // Per-node engines: the divergence is injected through Node(1)'s
    // own front end, which shared-decision mode doesn't host. (The
    // shared-mode divergence path is core_decision_test's
    // fault-injection case.)
    ClusterOptions options = SmallClusterOptions(2);
    options.shared_decisions = false;
    Cluster fe(options);
    DriveLoop(fe, 30, 6);
    ASSERT_TRUE(fe.StreamsIdentical());
    ASSERT_TRUE(fe.StreamDigestsAgree());
    // Drive one node outside the cluster front end: its stream (and
    // digest) must now differ, and both checks must agree on that.
    const rt::RegionId r = fe.Node(1).CreateRegion();
    fe.Node(1).ExecuteTask(rt::TaskLaunch{
        999, {{r, 0, rt::Privilege::kReadWrite, 0}}});
    fe.Node(1).Flush();
    EXPECT_FALSE(fe.StreamsIdentical());
    EXPECT_FALSE(fe.StreamDigestsAgree());
}

TEST(StreamDigest, SensitiveToEveryComparedField)
{
    // Two logs whose operations differ only in one compared field
    // must produce different digests.
    rt::TaskLaunch launch;
    launch.task = 7;
    launch.requirements = {{rt::RegionId{1}, 0,
                            rt::Privilege::kReadWrite, 0}};
    const rt::Dependence edge{0, 1, rt::DependenceKind::kTrue};

    const auto digest_of = [&](rt::TaskId task, rt::TraceId trace,
                               std::span<const rt::Dependence> deps) {
        rt::OperationLog log;
        rt::TaskLaunch first = launch;
        log.Append(rt::TaskLaunchView::Of(first),
                   rt::AnalysisMode::kAnalyzed, rt::kNoTrace, 1.0,
                   false, {});
        rt::TaskLaunch second = launch;
        second.task = task;
        log.Append(rt::TaskLaunchView::Of(second),
                   rt::AnalysisMode::kAnalyzed, trace, 1.0, false,
                   deps);
        return StreamDigest::Of(log);
    };

    const StreamDigest base = digest_of(7, rt::kNoTrace, {&edge, 1});
    const StreamDigest same = digest_of(7, rt::kNoTrace, {&edge, 1});
    EXPECT_EQ(base.Value(), same.Value());
    EXPECT_NE(base.Value(),
              digest_of(8, rt::kNoTrace, {&edge, 1}).Value())
        << "token not digested";
    EXPECT_NE(base.Value(), digest_of(7, 3, {&edge, 1}).Value())
        << "trace id not digested";
    EXPECT_NE(base.Value(), digest_of(7, rt::kNoTrace, {}).Value())
        << "edges not digested";
}

TEST(StreamDigest, StreamingDigestEqualsRetainedDigest)
{
    // The incremental (streaming-retire-fed) digest and the post-hoc
    // retained-log digest are the same fold over the same stream.
    ClusterOptions retained_options = SmallClusterOptions(2);
    Cluster retained(retained_options);
    DriveLoop(retained, 50, 8);

    ClusterOptions streaming_options = SmallClusterOptions(2);
    streaming_options.stream_logs = true;
    Cluster streaming(streaming_options);
    DriveLoop(streaming, 50, 8);
    streaming.DrainLogStreams();

    for (std::size_t n = 0; n < 2; ++n) {
        EXPECT_EQ(streaming.NodeDigest(n).Value(),
                  retained.NodeDigest(n).Value())
            << "node " << n;
        EXPECT_EQ(streaming.NodeDigest(n).Count(),
                  retained.NodeDigest(n).Count());
    }
    EXPECT_THROW(streaming.StreamsIdentical(), rt::RuntimeUsageError);
}

// ---------------------------------------------------------------------------
// Skew models.

ExperimentOptions ClusterExperiment(std::size_t replicas,
                                    std::size_t iterations)
{
    ExperimentOptions options;
    options.mode = TracingMode::kAuto;
    options.iterations = iterations;
    options.machine.nodes = 2;
    options.machine.gpus_per_node = 2;
    options.auto_config.min_trace_length = 10;
    options.auto_config.batchsize = 1500;
    options.auto_config.multi_scale_factor = 100;
    options.replicas = replicas;
    options.replication.seed = 7;
    options.replication.mean_latency_tasks = 120.0;
    options.replication.jitter = 0.6;
    return options;
}

std::uint64_t FinalSlackWithStraggler(double factor)
{
    ExperimentOptions options = ClusterExperiment(4, 60);
    if (factor > 1.0) {
        options.skew.kind = SkewKind::kStraggler;
        options.skew.straggler_node = 1;
        options.skew.straggler_factor = factor;
    }
    apps::S3dApplication app(
        apps::S3dOptions{.machine = options.machine});
    const ExperimentResult result = RunExperiment(app, options);
    EXPECT_TRUE(result.streams_identical) << "factor " << factor;
    return result.coordination.final_slack;
}

TEST(Skew, StragglerDegradesAgreedSlackMonotonically)
{
    const std::vector<double> factors = {1.0, 2.0, 4.0, 8.0};
    std::vector<std::uint64_t> slack;
    for (const double f : factors) {
        slack.push_back(FinalSlackWithStraggler(f));
    }
    for (std::size_t i = 1; i < slack.size(); ++i) {
        EXPECT_GE(slack[i], slack[i - 1])
            << "slack not monotone at factor " << factors[i];
    }
    EXPECT_GT(slack.back(), slack.front())
        << "an 8x straggler should visibly widen the agreed slack";
}

TEST(Skew, StragglerMakesTheOtherNodesStall)
{
    ExperimentOptions options = ClusterExperiment(4, 60);
    options.skew.kind = SkewKind::kStraggler;
    options.skew.straggler_node = 1;
    options.skew.straggler_factor = 8.0;
    apps::S3dApplication app(
        apps::S3dOptions{.machine = options.machine});
    const ExperimentResult result = RunExperiment(app, options);
    ASSERT_EQ(result.node_metrics.size(), 4u);
    // The straggler misses agreements; the healthy nodes pay stalls.
    EXPECT_GT(result.node_metrics[1].late_jobs, 0u);
    double healthy_stall = 0.0;
    for (std::size_t n = 0; n < 4; ++n) {
        if (n != 1) {
            healthy_stall += result.node_metrics[n].stall_tasks;
        }
    }
    EXPECT_GT(healthy_stall, 0.0);
    // The straggler's virtual clock ran 8x the others'.
    EXPECT_GT(result.node_metrics[1].virtual_time_tasks,
              4.0 * result.node_metrics[0].virtual_time_tasks);
    EXPECT_TRUE(result.streams_identical);
}

TEST(Skew, JitterAndInterferenceKeepStreamsIdentical)
{
    for (const SkewKind kind :
         {SkewKind::kJitter, SkewKind::kInterference}) {
        ExperimentOptions options = ClusterExperiment(3, 50);
        options.skew.kind = kind;
        options.skew.jitter_amplitude = 0.5;
        options.skew.burst_period_tasks = 512;
        options.skew.burst_duration_tasks = 128;
        options.skew.burst_factor = 8.0;
        options.skew.burst_stagger_tasks = 171;
        apps::S3dApplication app(
            apps::S3dOptions{.machine = options.machine});
        const ExperimentResult result = RunExperiment(app, options);
        EXPECT_TRUE(result.streams_identical)
            << SkewName(kind) << ": skew must perturb timing only";
        EXPECT_GT(result.replayed_fraction, 0.0) << SkewName(kind);
        // Skewed clocks ran ahead of the ideal task count.
        EXPECT_GT(result.node_metrics[0].virtual_time_tasks,
                  static_cast<double>(
                      result.frontend_stats.tasks_executed))
            << SkewName(kind);
    }
}

TEST(Skew, InterferenceBurstsForceAgreementMisses)
{
    ExperimentOptions baseline = ClusterExperiment(3, 60);
    apps::S3dApplication base_app(
        apps::S3dOptions{.machine = baseline.machine});
    const ExperimentResult none = RunExperiment(base_app, baseline);

    ExperimentOptions bursty = ClusterExperiment(3, 60);
    bursty.skew.kind = SkewKind::kInterference;
    bursty.skew.burst_period_tasks = 1024;
    bursty.skew.burst_duration_tasks = 256;
    bursty.skew.burst_factor = 16.0;
    apps::S3dApplication bursty_app(
        apps::S3dOptions{.machine = bursty.machine});
    const ExperimentResult result = RunExperiment(bursty_app, bursty);

    EXPECT_TRUE(result.streams_identical);
    EXPECT_GE(result.coordination.late_jobs,
              none.coordination.late_jobs);
    EXPECT_GE(result.coordination.peak_slack,
              none.coordination.peak_slack);
}

// ---------------------------------------------------------------------------
// The replication x skew x log-mode x app axis.

template <typename App, typename Options>
void ExpectStreamingMatchesRetained(Options app_options,
                                    std::size_t iterations,
                                    std::string_view label)
{
    SCOPED_TRACE(std::string(label));
    // Retained / no-skew baseline.
    ExperimentOptions options = ClusterExperiment(2, iterations);
    options.machine = app_options.machine;
    App retained_app(app_options);
    const ExperimentResult retained =
        RunExperiment(retained_app, options);
    EXPECT_TRUE(retained.streams_identical);
    EXPECT_GT(retained.replayed_fraction, 0.0);

    // Streaming, skew none: bit-identical to the baseline.
    options.log_mode = LogMode::kStreaming;
    App streaming_app(app_options);
    const ExperimentResult streaming =
        RunExperiment(streaming_app, options);
    EXPECT_TRUE(streaming.streams_identical);
    EXPECT_EQ(streaming.iterations_per_second,
              retained.iterations_per_second);
    EXPECT_EQ(streaming.makespan_us, retained.makespan_us);
    EXPECT_EQ(streaming.total_tasks, retained.total_tasks);
    EXPECT_EQ(streaming.replayed_fraction, retained.replayed_fraction);
    EXPECT_EQ(streaming.coordination.final_slack,
              retained.coordination.final_slack);
    EXPECT_EQ(streaming.log_retired_ops, streaming.total_tasks);

    // Streaming under a straggler: still safe, still streams.
    options.skew.kind = SkewKind::kStraggler;
    options.skew.straggler_node = 1;
    options.skew.straggler_factor = 4.0;
    App skewed_app(app_options);
    const ExperimentResult skewed = RunExperiment(skewed_app, options);
    EXPECT_TRUE(skewed.streams_identical);
    EXPECT_EQ(skewed.total_tasks, retained.total_tasks);
    EXPECT_EQ(skewed.log_retired_ops, skewed.total_tasks);
}

TEST(ClusterHarness, S3dStreamingReplicated)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectStreamingMatchesRetained<apps::S3dApplication>(
        apps::S3dOptions{.machine = machine}, 60, "s3d");
}

TEST(ClusterHarness, HtrStreamingReplicated)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectStreamingMatchesRetained<apps::HtrApplication>(
        apps::HtrOptions{.machine = machine}, 50, "htr");
}

TEST(ClusterHarness, CfdStreamingReplicated)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectStreamingMatchesRetained<apps::CfdApplication>(
        apps::CfdOptions{.machine = machine}, 120, "cfd");
}

TEST(ClusterHarness, TorchSweStreamingReplicated)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    apps::TorchSweOptions options{.machine = machine};
    options.allocation_pool_budget = 150;
    ExpectStreamingMatchesRetained<apps::TorchSweApplication>(
        options, 80, "torchswe");
}

TEST(ClusterHarness, FlexFlowStreamingReplicated)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectStreamingMatchesRetained<apps::FlexFlowApplication>(
        apps::FlexFlowOptions{.machine = machine}, 40, "flexflow");
}

TEST(ClusterHarness, EightNodesStreamingWithSkew)
{
    ExperimentOptions options = ClusterExperiment(8, 50);
    options.log_mode = LogMode::kStreaming;
    options.skew.kind = SkewKind::kInterference;
    options.skew.burst_period_tasks = 768;
    options.skew.burst_duration_tasks = 128;
    options.skew.burst_factor = 8.0;
    options.skew.burst_stagger_tasks = 96;
    apps::S3dApplication app(
        apps::S3dOptions{.machine = options.machine});
    const ExperimentResult result = RunExperiment(app, options);
    EXPECT_TRUE(result.streams_identical);
    EXPECT_GT(result.replayed_fraction, 0.0);
    ASSERT_EQ(result.node_metrics.size(), 8u);
    EXPECT_EQ(result.log_retired_ops, result.total_tasks);
}

// ---------------------------------------------------------------------------
// The parallel execution engine: thread-count invariance, the shared
// mining cache's mine-once invariant, and the zero-allocation issue
// path.

TEST(ParallelEngine, ClusterByteIdenticalAcrossJobCounts)
{
    // Identical clusters driven identically at jobs {1, 2, 8} must
    // produce the very same digests, coordination stats and per-node
    // metrics — jobs=1 is the serial schedule, so this pins the
    // parallel engine to it bit-for-bit.
    auto run = [](std::size_t jobs) {
        ClusterOptions options = SmallClusterOptions(4);
        options.jobs = jobs;
        options.coordination.seed = 11;
        options.coordination.jitter = 0.9;
        options.skew.kind = SkewKind::kJitter;
        options.skew.jitter_amplitude = 0.4;
        auto fe = std::make_unique<Cluster>(options);
        DriveLoop(*fe, /*iterations=*/60, /*body=*/10);
        return fe;
    };
    const auto reference = run(1);
    for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
        SCOPED_TRACE(jobs);
        const auto parallel = run(jobs);
        // The team is clamped to the node count (4 here).
        EXPECT_EQ(parallel->Jobs(),
                  std::min(jobs, parallel->Nodes()));
        for (std::size_t n = 0; n < reference->Nodes(); ++n) {
            EXPECT_EQ(parallel->NodeDigest(n).Value(),
                      reference->NodeDigest(n).Value())
                << "node " << n;
            EXPECT_EQ(parallel->NodeDigest(n).Count(),
                      reference->NodeDigest(n).Count());
        }
        const CoordinationStats& a = parallel->Coordination();
        const CoordinationStats& b = reference->Coordination();
        EXPECT_EQ(a.jobs_coordinated, b.jobs_coordinated);
        EXPECT_EQ(a.late_jobs, b.late_jobs);
        EXPECT_EQ(a.final_slack, b.final_slack);
        EXPECT_EQ(a.peak_slack, b.peak_slack);
        for (std::size_t n = 0; n < reference->Nodes(); ++n) {
            const NodeMetrics& pm = parallel->PerNode()[n];
            const NodeMetrics& rm = reference->PerNode()[n];
            EXPECT_DOUBLE_EQ(pm.virtual_time_tasks,
                             rm.virtual_time_tasks);
            EXPECT_EQ(pm.late_jobs, rm.late_jobs);
            EXPECT_DOUBLE_EQ(pm.stall_tasks, rm.stall_tasks);
            EXPECT_DOUBLE_EQ(pm.max_stall_tasks, rm.max_stall_tasks);
        }
    }
}

TEST(ParallelEngine, HarnessResultsIdenticalAcrossJobCounts)
{
    // The full replicated streaming harness (skewed, 8 nodes) through
    // every figure surface: simulated throughput, makespan, slack
    // trajectory and per-node metrics must not depend on jobs.
    auto run = [](std::size_t jobs) {
        ExperimentOptions options = ClusterExperiment(8, 40);
        options.log_mode = LogMode::kStreaming;
        options.skew.kind = SkewKind::kStraggler;
        options.skew.straggler_node = 2;
        options.skew.straggler_factor = 4.0;
        options.cluster_jobs = jobs;
        apps::S3dApplication app(
            apps::S3dOptions{.machine = options.machine});
        return RunExperiment(app, options);
    };
    const ExperimentResult reference = run(1);
    EXPECT_TRUE(reference.streams_identical);
    for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
        SCOPED_TRACE(jobs);
        const ExperimentResult parallel = run(jobs);
        EXPECT_TRUE(parallel.streams_identical);
        // The issued streams themselves, not just derived figures.
        EXPECT_EQ(parallel.stream_digest, reference.stream_digest);
        EXPECT_EQ(parallel.stream_digest_ops,
                  reference.stream_digest_ops);
        EXPECT_DOUBLE_EQ(parallel.iterations_per_second,
                         reference.iterations_per_second);
        EXPECT_DOUBLE_EQ(parallel.makespan_us, reference.makespan_us);
        EXPECT_EQ(parallel.total_tasks, reference.total_tasks);
        EXPECT_EQ(parallel.replayed_fraction,
                  reference.replayed_fraction);
        EXPECT_EQ(parallel.log_retired_ops, reference.log_retired_ops);
        EXPECT_EQ(parallel.coordination.final_slack,
                  reference.coordination.final_slack);
        EXPECT_EQ(parallel.coordination.late_jobs,
                  reference.coordination.late_jobs);
        EXPECT_EQ(parallel.coordination.peak_slack,
                  reference.coordination.peak_slack);
        ASSERT_EQ(parallel.node_metrics.size(),
                  reference.node_metrics.size());
        for (std::size_t n = 0; n < reference.node_metrics.size(); ++n) {
            EXPECT_DOUBLE_EQ(parallel.node_metrics[n].virtual_time_tasks,
                             reference.node_metrics[n].virtual_time_tasks);
            EXPECT_DOUBLE_EQ(parallel.node_metrics[n].stall_tasks,
                             reference.node_metrics[n].stall_tasks);
        }
        // The cache serves every node beyond the first miner at any
        // thread count (a racing prober blocks for the miner rather
        // than mining twice).
        EXPECT_EQ(parallel.mining_cache_misses,
                  reference.mining_cache_misses);
        EXPECT_EQ(parallel.mining_cache_hits,
                  reference.mining_cache_hits);
    }
}

TEST(MiningCache, NoSkewReplicatedRunsMineEachWindowOnce)
{
    constexpr std::size_t kNodes = 4;
    ExperimentOptions options = ClusterExperiment(kNodes, 50);
    options.log_mode = LogMode::kStreaming;
    // The per-window accounting below counts every node's own probes
    // — per-node engines (under shared decisions only the one decider
    // mines, which is the stronger dedup, tested elsewhere).
    options.shared_decisions = false;
    apps::S3dApplication app(
        apps::S3dOptions{.machine = options.machine});
    const ExperimentResult result = RunExperiment(app, options);
    EXPECT_TRUE(result.streams_identical);

    const std::uint64_t jobs_per_node =
        result.apophenia_stats.jobs_ingested;
    ASSERT_GT(jobs_per_node, 0u);
    // Every job is served exactly once: by a node's own rolling fast
    // path (no cache probe at all), by a cache hit, or by a miss (its
    // one mining run). Each distinct window costs exactly one miss,
    // and every other job — all of nodes 1..N-1's, plus repeated
    // windows on node 0 — is a cache hit or a fast-path hit.
    EXPECT_EQ(result.mining_cache_hits + result.mining_cache_misses +
                  result.mining_fast_path_hits,
              kNodes * jobs_per_node);
    EXPECT_EQ(result.mining_cache_misses, result.mining_cache_windows)
        << "a window was mined more than once";
    EXPECT_LE(result.mining_cache_misses, jobs_per_node)
        << "a node other than the first finisher re-mined a window";
    EXPECT_GE(result.mining_cache_hits + result.mining_fast_path_hits,
              (kNodes - 1) * jobs_per_node);
}

TEST(MiningCache, BoundedRetentionEvictsOldestAndStaysCorrect)
{
    core::MiningCache cache(/*max_windows=*/2);
    const std::vector<rt::TokenHash> a{1, 2, 3};
    const std::vector<rt::TokenHash> b{4, 5, 6};
    const std::vector<rt::TokenHash> c{7, 8, 9};
    auto span_of = [](const std::vector<rt::TokenHash>& w) {
        return std::span<const rt::TokenHash>(w);
    };
    auto mine = [&](const std::vector<rt::TokenHash>& w) {
        const core::MiningCache::Key key =
            core::MiningCache::KeyOf(span_of(w));
        core::MiningCache::Claim claim =
            cache.AcquireOrBegin(key, span_of(w));
        EXPECT_TRUE(claim.miner);
        return cache.Publish(key, span_of(w),
                             {core::CandidateTrace{w, 2.0}});
    };
    const auto a_results = mine(a);
    mine(b);
    mine(c);  // evicts a (FIFO, cap 2)
    EXPECT_EQ(cache.Size(), 2u);
    // An adopter's shared ownership survives the eviction.
    ASSERT_EQ(a_results->size(), 1u);
    EXPECT_EQ(a_results->front().tokens, a);
    // A retained window still hits; the evicted one is re-mined.
    const core::MiningCache::Claim hit = cache.AcquireOrBegin(
        core::MiningCache::KeyOf(span_of(c)), span_of(c));
    ASSERT_NE(hit.results, nullptr);
    EXPECT_FALSE(hit.miner);
    const core::MiningCache::Claim remine = cache.AcquireOrBegin(
        core::MiningCache::KeyOf(span_of(a)), span_of(a));
    EXPECT_EQ(remine.results, nullptr);
    EXPECT_TRUE(remine.miner);
    cache.Abandon(core::MiningCache::KeyOf(span_of(a)));
    const core::MiningCache::Stats stats = cache.Snapshot();
    EXPECT_EQ(stats.misses, 4u);  // a, b, c mined + a re-begun
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.windows, 3u);  // published runs
}

TEST(MiningCache, HashCollisionIsDetectedNotAdopted)
{
    // Probe an existing key with *different* window content (a forged
    // 64-bit collision): the cache must refuse to adopt and must not
    // let the prober clobber the entry — it mines locally instead.
    core::MiningCache cache;
    const std::vector<rt::TokenHash> original{10, 20, 30};
    const std::vector<rt::TokenHash> impostor{11, 21, 31};
    const core::MiningCache::Key key = core::MiningCache::KeyOf(
        std::span<const rt::TokenHash>(original));
    core::MiningCache::Claim claim = cache.AcquireOrBegin(
        key, std::span<const rt::TokenHash>(original));
    ASSERT_TRUE(claim.miner);
    cache.Publish(key, std::span<const rt::TokenHash>(original),
                  {core::CandidateTrace{original, 2.0}});

    const core::MiningCache::Claim collided = cache.AcquireOrBegin(
        key, std::span<const rt::TokenHash>(impostor));
    EXPECT_EQ(collided.results, nullptr) << "adopted a colliding window";
    EXPECT_FALSE(collided.miner) << "collision must not own the entry";
    // The original entry is untouched and still serves hits.
    const core::MiningCache::Claim hit = cache.AcquireOrBegin(
        key, std::span<const rt::TokenHash>(original));
    ASSERT_NE(hit.results, nullptr);
    EXPECT_EQ(hit.results->front().tokens, original);
}

TEST(MiningCache, SharedCacheIsBehaviourInvariant)
{
    // On or off, the cache may change wall-clock only: every figure
    // surface of a skewed replicated run must be identical.
    auto run = [](bool share) {
        ExperimentOptions options = ClusterExperiment(3, 40);
        options.skew.kind = SkewKind::kJitter;
        options.skew.jitter_amplitude = 0.5;
        options.share_mining_cache = share;
        // Per-node engines: the cross-node adoption this test pins
        // (hits > 0 with the cache on) only exists when every node
        // mines for itself.
        options.shared_decisions = false;
        apps::S3dApplication app(
            apps::S3dOptions{.machine = options.machine});
        return RunExperiment(app, options);
    };
    const ExperimentResult with = run(true);
    const ExperimentResult without = run(false);
    EXPECT_TRUE(with.streams_identical);
    EXPECT_TRUE(without.streams_identical);
    EXPECT_EQ(with.stream_digest, without.stream_digest);
    EXPECT_EQ(with.stream_digest_ops, without.stream_digest_ops);
    EXPECT_DOUBLE_EQ(with.iterations_per_second,
                     without.iterations_per_second);
    EXPECT_DOUBLE_EQ(with.makespan_us, without.makespan_us);
    EXPECT_EQ(with.total_tasks, without.total_tasks);
    EXPECT_EQ(with.replayed_fraction, without.replayed_fraction);
    EXPECT_EQ(with.coordination.final_slack,
              without.coordination.final_slack);
    EXPECT_GT(with.mining_cache_hits, 0u);
    EXPECT_EQ(without.mining_cache_hits, 0u);
    EXPECT_EQ(without.mining_cache_misses, 0u);
}

namespace {

void DriveStreamingIssuePath(std::size_t jobs)
{
    ClusterOptions options;
    options.coordination.nodes = 3;
    options.config.enabled = false;  // untraced control replication
    options.stream_logs = true;
    options.jobs = jobs;
    options.runtime_options.log_config.ops_per_block = 256;
    options.runtime_options.log_config.payload_block_elems = 1024;
    Cluster fe(options);
    api::LaunchBuilder builder;
    const rt::RegionId r0 = fe.CreateRegion();
    const rt::RegionId out = fe.CreateRegion();
    auto issue_one = [&](std::size_t i) {
        const rt::FieldId f = static_cast<rt::FieldId>(i % 4);
        builder.Start(static_cast<rt::TaskId>(100 + i % 8), 0, 50.0)
            .Add(rt::RegionRequirement{r0, f, rt::Privilege::kReadWrite,
                                       0})
            .Add(rt::RegionRequirement{out, f,
                                       rt::Privilege::kWriteDiscard, 0})
            .LaunchOn(fe);
    };
    // Warm through several batch and log-block cycles on every node:
    // batch slots, pending pools and recycled blocks reach capacity.
    for (std::size_t i = 0; i < 4096; ++i) {
        issue_one(i);
    }
    const std::uint64_t before = support::AllocationCount();
    for (std::size_t i = 0; i < 8192; ++i) {
        issue_one(4096 + i);
    }
    EXPECT_EQ(support::AllocationCount() - before, 0u)
        << "replicated streaming issue path allocated per launch "
           "(jobs=" << jobs << ")";
    fe.Flush();
    EXPECT_TRUE(fe.StreamDigestsAgree());
    EXPECT_EQ(fe.NodeDigest(0).Count(), 4096u + 8192u);
}

}  // namespace

TEST(ZeroAlloc, ReplicatedStreamingIssuePathIsAllocationFree)
{
    DriveStreamingIssuePath(/*jobs=*/1);
}

TEST(ZeroAlloc, ParallelEngineKeepsTheIssuePathAllocationFree)
{
    // The TaskTeam fan-out must not reintroduce per-launch (or
    // per-batch) allocations: the body is installed once and each
    // barrier only republishes an index range.
    DriveStreamingIssuePath(/*jobs=*/2);
}

TEST(ClusterHarness, SixtyFourNodeStreamingStaysUnderLogCeiling)
{
    // The "millions of users" shape: 64 simulated nodes, every node's
    // log in streaming-retire mode. The worst node's resident log
    // memory must stay under a fixed ceiling no matter the stream
    // length, and agreement is certified by the rolling digests alone
    // (no retained logs exist to compare).
    constexpr std::size_t kCeilingBytes = 2u << 20;  // 2 MiB per node
    ExperimentOptions options = ClusterExperiment(64, 40);
    options.log_mode = LogMode::kStreaming;
    options.skew.kind = SkewKind::kJitter;
    options.skew.jitter_amplitude = 0.3;
    apps::S3dApplication app(
        apps::S3dOptions{.machine = options.machine});
    const ExperimentResult result = RunExperiment(app, options);
    EXPECT_TRUE(result.streams_identical);
    EXPECT_GT(result.replayed_fraction, 0.0);
    ASSERT_EQ(result.node_metrics.size(), 64u);
    EXPECT_EQ(result.log_retired_ops, result.total_tasks);
    EXPECT_LT(result.log_peak_resident_bytes, kCeilingBytes)
        << "worst-node resident log exceeded the streaming ceiling";
}

}  // namespace
}  // namespace apo::sim
