/**
 * @file
 * Tests for the skew-aware cluster simulation (sim/cluster.h): the
 * agreement protocol must make every node issue a bit-identical call
 * sequence regardless of per-node analysis completion jitter *and*
 * per-node skew; the incremental StreamDigest must agree with the
 * exact retained-log comparison on identical and deliberately
 * diverged streams; straggler skew must degrade the agreed slack
 * monotonically; and a 64-node streaming run must stay under a fixed
 * resident-log ceiling while certifying agreement through the rolling
 * digests.
 */
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "apps/cfd.h"
#include "apps/flexflow.h"
#include "apps/htr.h"
#include "apps/s3d.h"
#include "apps/torchswe.h"
#include "sim/cluster.h"
#include "sim/harness.h"

namespace apo::sim {
namespace {

core::ApopheniaConfig SmallConfig()
{
    core::ApopheniaConfig config;
    config.min_trace_length = 5;
    config.batchsize = 400;
    config.multi_scale_factor = 50;
    return config;
}

ClusterOptions SmallClusterOptions(std::size_t nodes)
{
    ClusterOptions options;
    options.coordination.nodes = nodes;
    options.config = SmallConfig();
    return options;
}

void DriveLoop(Cluster& fe, int iterations, int body)
{
    // Region management broadcasts to every node; the deterministic
    // per-node allocators must agree on the id.
    std::vector<rt::RegionId> regions;
    for (int i = 0; i < body; ++i) {
        regions.push_back(fe.CreateRegion());
    }
    for (int iter = 0; iter < iterations; ++iter) {
        for (int i = 0; i < body; ++i) {
            fe.ExecuteTask(rt::TaskLaunch{
                static_cast<rt::TaskId>(100 + i),
                {{regions[i], 0, rt::Privilege::kReadOnly, 0},
                 {regions[(i + 1) % body], 0, rt::Privilege::kReadWrite,
                  0}}});
        }
    }
    fe.Flush();
}

// ---------------------------------------------------------------------------
// The agreement protocol (ported from the core::ReplicatedFrontEnd
// tests — sim::Cluster is now the one replication implementation).

class ClusterProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ClusterProperty, NodesIssueIdenticalStreams)
{
    const auto [nodes, seed] = GetParam();
    ClusterOptions options =
        SmallClusterOptions(static_cast<std::size_t>(nodes));
    options.coordination.seed = seed;
    options.coordination.mean_latency_tasks = 120.0;
    options.coordination.jitter = 0.9;  // adversarial completion skew
    Cluster fe(options);
    DriveLoop(fe, /*iterations=*/80, /*body=*/10);
    EXPECT_TRUE(fe.StreamsIdentical());
    EXPECT_TRUE(fe.StreamDigestsAgree());
    // Tracing actually happened on every node.
    for (std::size_t n = 0; n < fe.Nodes(); ++n) {
        EXPECT_GT(fe.NodeRuntime(n).Stats().tasks_replayed, 0u)
            << "node " << n;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusterProperty,
    ::testing::Combine(::testing::Values(2, 3, 8),
                       ::testing::Values<std::uint64_t>(1, 7, 42)));

TEST(Cluster, SlackAdaptsToSlowAnalyses)
{
    ClusterOptions options = SmallClusterOptions(2);
    options.coordination.seed = 5;
    options.coordination.initial_slack = 1;         // far too tight
    options.coordination.mean_latency_tasks = 300;  // analyses are slow
    Cluster fe(options);
    DriveLoop(fe, 100, 10);
    const CoordinationStats& stats = fe.Coordination();
    EXPECT_GT(stats.jobs_coordinated, 0u);
    EXPECT_GT(stats.late_jobs, 0u);
    EXPECT_GT(stats.final_slack, options.coordination.initial_slack);
    EXPECT_GE(stats.peak_slack, stats.final_slack);
    EXPECT_TRUE(fe.StreamsIdentical());
}

TEST(Cluster, GenerousSlackAvoidsLateJobs)
{
    ClusterOptions options = SmallClusterOptions(2);
    options.coordination.seed = 5;
    options.coordination.initial_slack = 10000;  // above any latency
    options.coordination.mean_latency_tasks = 50;
    options.coordination.jitter = 0.5;
    Cluster fe(options);
    DriveLoop(fe, 100, 10);
    EXPECT_EQ(fe.Coordination().late_jobs, 0u);
    EXPECT_TRUE(fe.StreamsIdentical());
    // Stall-free steady state: ingestion at the agreed points.
    for (const NodeMetrics& node : fe.PerNode()) {
        EXPECT_EQ(node.stall_tasks, 0.0);
        EXPECT_EQ(node.late_jobs, 0u);
    }
}

TEST(Cluster, SingleNodeDegeneratesGracefully)
{
    Cluster fe(SmallClusterOptions(1));
    DriveLoop(fe, 50, 10);
    EXPECT_TRUE(fe.StreamsIdentical());
    EXPECT_TRUE(fe.StreamDigestsAgree());
    EXPECT_GT(fe.NodeRuntime(0).Stats().tasks_replayed, 0u);
}

TEST(Cluster, VirtualClocksMatchTaskCountWithoutSkew)
{
    Cluster fe(SmallClusterOptions(3));
    DriveLoop(fe, 40, 10);
    const double issued =
        static_cast<double>(fe.Stats().tasks_executed);
    for (const NodeMetrics& node : fe.PerNode()) {
        EXPECT_DOUBLE_EQ(node.virtual_time_tasks, issued);
    }
}

// ---------------------------------------------------------------------------
// Incremental digest vs. exact retained comparison.

TEST(StreamDigest, AgreesWithExactComparisonOnIdenticalStreams)
{
    Cluster fe(SmallClusterOptions(3));
    DriveLoop(fe, 60, 8);
    EXPECT_TRUE(fe.StreamsIdentical());
    EXPECT_TRUE(fe.StreamDigestsAgree());
    EXPECT_EQ(fe.NodeDigest(0).Count(),
              fe.NodeRuntime(0).Log().size());
}

TEST(StreamDigest, DetectsDeliberateDivergence)
{
    Cluster fe(SmallClusterOptions(2));
    DriveLoop(fe, 30, 6);
    ASSERT_TRUE(fe.StreamsIdentical());
    ASSERT_TRUE(fe.StreamDigestsAgree());
    // Drive one node outside the cluster front end: its stream (and
    // digest) must now differ, and both checks must agree on that.
    const rt::RegionId r = fe.Node(1).CreateRegion();
    fe.Node(1).ExecuteTask(rt::TaskLaunch{
        999, {{r, 0, rt::Privilege::kReadWrite, 0}}});
    fe.Node(1).Flush();
    EXPECT_FALSE(fe.StreamsIdentical());
    EXPECT_FALSE(fe.StreamDigestsAgree());
}

TEST(StreamDigest, SensitiveToEveryComparedField)
{
    // Two logs whose operations differ only in one compared field
    // must produce different digests.
    rt::TaskLaunch launch;
    launch.task = 7;
    launch.requirements = {{rt::RegionId{1}, 0,
                            rt::Privilege::kReadWrite, 0}};
    const rt::Dependence edge{0, 1, rt::DependenceKind::kTrue};

    const auto digest_of = [&](rt::TaskId task, rt::TraceId trace,
                               std::span<const rt::Dependence> deps) {
        rt::OperationLog log;
        rt::TaskLaunch first = launch;
        log.Append(rt::TaskLaunchView::Of(first),
                   rt::AnalysisMode::kAnalyzed, rt::kNoTrace, 1.0,
                   false, {});
        rt::TaskLaunch second = launch;
        second.task = task;
        log.Append(rt::TaskLaunchView::Of(second),
                   rt::AnalysisMode::kAnalyzed, trace, 1.0, false,
                   deps);
        return StreamDigest::Of(log);
    };

    const StreamDigest base = digest_of(7, rt::kNoTrace, {&edge, 1});
    const StreamDigest same = digest_of(7, rt::kNoTrace, {&edge, 1});
    EXPECT_EQ(base.Value(), same.Value());
    EXPECT_NE(base.Value(),
              digest_of(8, rt::kNoTrace, {&edge, 1}).Value())
        << "token not digested";
    EXPECT_NE(base.Value(), digest_of(7, 3, {&edge, 1}).Value())
        << "trace id not digested";
    EXPECT_NE(base.Value(), digest_of(7, rt::kNoTrace, {}).Value())
        << "edges not digested";
}

TEST(StreamDigest, StreamingDigestEqualsRetainedDigest)
{
    // The incremental (streaming-retire-fed) digest and the post-hoc
    // retained-log digest are the same fold over the same stream.
    ClusterOptions retained_options = SmallClusterOptions(2);
    Cluster retained(retained_options);
    DriveLoop(retained, 50, 8);

    ClusterOptions streaming_options = SmallClusterOptions(2);
    streaming_options.stream_logs = true;
    Cluster streaming(streaming_options);
    DriveLoop(streaming, 50, 8);
    streaming.DrainLogStreams();

    for (std::size_t n = 0; n < 2; ++n) {
        EXPECT_EQ(streaming.NodeDigest(n).Value(),
                  retained.NodeDigest(n).Value())
            << "node " << n;
        EXPECT_EQ(streaming.NodeDigest(n).Count(),
                  retained.NodeDigest(n).Count());
    }
    EXPECT_THROW(streaming.StreamsIdentical(), rt::RuntimeUsageError);
}

// ---------------------------------------------------------------------------
// Skew models.

ExperimentOptions ClusterExperiment(std::size_t replicas,
                                    std::size_t iterations)
{
    ExperimentOptions options;
    options.mode = TracingMode::kAuto;
    options.iterations = iterations;
    options.machine.nodes = 2;
    options.machine.gpus_per_node = 2;
    options.auto_config.min_trace_length = 10;
    options.auto_config.batchsize = 1500;
    options.auto_config.multi_scale_factor = 100;
    options.replicas = replicas;
    options.replication.seed = 7;
    options.replication.mean_latency_tasks = 120.0;
    options.replication.jitter = 0.6;
    return options;
}

std::uint64_t FinalSlackWithStraggler(double factor)
{
    ExperimentOptions options = ClusterExperiment(4, 60);
    if (factor > 1.0) {
        options.skew.kind = SkewKind::kStraggler;
        options.skew.straggler_node = 1;
        options.skew.straggler_factor = factor;
    }
    apps::S3dApplication app(
        apps::S3dOptions{.machine = options.machine});
    const ExperimentResult result = RunExperiment(app, options);
    EXPECT_TRUE(result.streams_identical) << "factor " << factor;
    return result.coordination.final_slack;
}

TEST(Skew, StragglerDegradesAgreedSlackMonotonically)
{
    const std::vector<double> factors = {1.0, 2.0, 4.0, 8.0};
    std::vector<std::uint64_t> slack;
    for (const double f : factors) {
        slack.push_back(FinalSlackWithStraggler(f));
    }
    for (std::size_t i = 1; i < slack.size(); ++i) {
        EXPECT_GE(slack[i], slack[i - 1])
            << "slack not monotone at factor " << factors[i];
    }
    EXPECT_GT(slack.back(), slack.front())
        << "an 8x straggler should visibly widen the agreed slack";
}

TEST(Skew, StragglerMakesTheOtherNodesStall)
{
    ExperimentOptions options = ClusterExperiment(4, 60);
    options.skew.kind = SkewKind::kStraggler;
    options.skew.straggler_node = 1;
    options.skew.straggler_factor = 8.0;
    apps::S3dApplication app(
        apps::S3dOptions{.machine = options.machine});
    const ExperimentResult result = RunExperiment(app, options);
    ASSERT_EQ(result.node_metrics.size(), 4u);
    // The straggler misses agreements; the healthy nodes pay stalls.
    EXPECT_GT(result.node_metrics[1].late_jobs, 0u);
    double healthy_stall = 0.0;
    for (std::size_t n = 0; n < 4; ++n) {
        if (n != 1) {
            healthy_stall += result.node_metrics[n].stall_tasks;
        }
    }
    EXPECT_GT(healthy_stall, 0.0);
    // The straggler's virtual clock ran 8x the others'.
    EXPECT_GT(result.node_metrics[1].virtual_time_tasks,
              4.0 * result.node_metrics[0].virtual_time_tasks);
    EXPECT_TRUE(result.streams_identical);
}

TEST(Skew, JitterAndInterferenceKeepStreamsIdentical)
{
    for (const SkewKind kind :
         {SkewKind::kJitter, SkewKind::kInterference}) {
        ExperimentOptions options = ClusterExperiment(3, 50);
        options.skew.kind = kind;
        options.skew.jitter_amplitude = 0.5;
        options.skew.burst_period_tasks = 512;
        options.skew.burst_duration_tasks = 128;
        options.skew.burst_factor = 8.0;
        options.skew.burst_stagger_tasks = 171;
        apps::S3dApplication app(
            apps::S3dOptions{.machine = options.machine});
        const ExperimentResult result = RunExperiment(app, options);
        EXPECT_TRUE(result.streams_identical)
            << SkewName(kind) << ": skew must perturb timing only";
        EXPECT_GT(result.replayed_fraction, 0.0) << SkewName(kind);
        // Skewed clocks ran ahead of the ideal task count.
        EXPECT_GT(result.node_metrics[0].virtual_time_tasks,
                  static_cast<double>(
                      result.frontend_stats.tasks_executed))
            << SkewName(kind);
    }
}

TEST(Skew, InterferenceBurstsForceAgreementMisses)
{
    ExperimentOptions baseline = ClusterExperiment(3, 60);
    apps::S3dApplication base_app(
        apps::S3dOptions{.machine = baseline.machine});
    const ExperimentResult none = RunExperiment(base_app, baseline);

    ExperimentOptions bursty = ClusterExperiment(3, 60);
    bursty.skew.kind = SkewKind::kInterference;
    bursty.skew.burst_period_tasks = 1024;
    bursty.skew.burst_duration_tasks = 256;
    bursty.skew.burst_factor = 16.0;
    apps::S3dApplication bursty_app(
        apps::S3dOptions{.machine = bursty.machine});
    const ExperimentResult result = RunExperiment(bursty_app, bursty);

    EXPECT_TRUE(result.streams_identical);
    EXPECT_GE(result.coordination.late_jobs,
              none.coordination.late_jobs);
    EXPECT_GE(result.coordination.peak_slack,
              none.coordination.peak_slack);
}

// ---------------------------------------------------------------------------
// The replication x skew x log-mode x app axis.

template <typename App, typename Options>
void ExpectStreamingMatchesRetained(Options app_options,
                                    std::size_t iterations,
                                    std::string_view label)
{
    SCOPED_TRACE(std::string(label));
    // Retained / no-skew baseline.
    ExperimentOptions options = ClusterExperiment(2, iterations);
    options.machine = app_options.machine;
    App retained_app(app_options);
    const ExperimentResult retained =
        RunExperiment(retained_app, options);
    EXPECT_TRUE(retained.streams_identical);
    EXPECT_GT(retained.replayed_fraction, 0.0);

    // Streaming, skew none: bit-identical to the baseline.
    options.log_mode = LogMode::kStreaming;
    App streaming_app(app_options);
    const ExperimentResult streaming =
        RunExperiment(streaming_app, options);
    EXPECT_TRUE(streaming.streams_identical);
    EXPECT_EQ(streaming.iterations_per_second,
              retained.iterations_per_second);
    EXPECT_EQ(streaming.makespan_us, retained.makespan_us);
    EXPECT_EQ(streaming.total_tasks, retained.total_tasks);
    EXPECT_EQ(streaming.replayed_fraction, retained.replayed_fraction);
    EXPECT_EQ(streaming.coordination.final_slack,
              retained.coordination.final_slack);
    EXPECT_EQ(streaming.log_retired_ops, streaming.total_tasks);

    // Streaming under a straggler: still safe, still streams.
    options.skew.kind = SkewKind::kStraggler;
    options.skew.straggler_node = 1;
    options.skew.straggler_factor = 4.0;
    App skewed_app(app_options);
    const ExperimentResult skewed = RunExperiment(skewed_app, options);
    EXPECT_TRUE(skewed.streams_identical);
    EXPECT_EQ(skewed.total_tasks, retained.total_tasks);
    EXPECT_EQ(skewed.log_retired_ops, skewed.total_tasks);
}

TEST(ClusterHarness, S3dStreamingReplicated)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectStreamingMatchesRetained<apps::S3dApplication>(
        apps::S3dOptions{.machine = machine}, 60, "s3d");
}

TEST(ClusterHarness, HtrStreamingReplicated)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectStreamingMatchesRetained<apps::HtrApplication>(
        apps::HtrOptions{.machine = machine}, 50, "htr");
}

TEST(ClusterHarness, CfdStreamingReplicated)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectStreamingMatchesRetained<apps::CfdApplication>(
        apps::CfdOptions{.machine = machine}, 120, "cfd");
}

TEST(ClusterHarness, TorchSweStreamingReplicated)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    apps::TorchSweOptions options{.machine = machine};
    options.allocation_pool_budget = 150;
    ExpectStreamingMatchesRetained<apps::TorchSweApplication>(
        options, 80, "torchswe");
}

TEST(ClusterHarness, FlexFlowStreamingReplicated)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectStreamingMatchesRetained<apps::FlexFlowApplication>(
        apps::FlexFlowOptions{.machine = machine}, 40, "flexflow");
}

TEST(ClusterHarness, EightNodesStreamingWithSkew)
{
    ExperimentOptions options = ClusterExperiment(8, 50);
    options.log_mode = LogMode::kStreaming;
    options.skew.kind = SkewKind::kInterference;
    options.skew.burst_period_tasks = 768;
    options.skew.burst_duration_tasks = 128;
    options.skew.burst_factor = 8.0;
    options.skew.burst_stagger_tasks = 96;
    apps::S3dApplication app(
        apps::S3dOptions{.machine = options.machine});
    const ExperimentResult result = RunExperiment(app, options);
    EXPECT_TRUE(result.streams_identical);
    EXPECT_GT(result.replayed_fraction, 0.0);
    ASSERT_EQ(result.node_metrics.size(), 8u);
    EXPECT_EQ(result.log_retired_ops, result.total_tasks);
}

TEST(ClusterHarness, SixtyFourNodeStreamingStaysUnderLogCeiling)
{
    // The "millions of users" shape: 64 simulated nodes, every node's
    // log in streaming-retire mode. The worst node's resident log
    // memory must stay under a fixed ceiling no matter the stream
    // length, and agreement is certified by the rolling digests alone
    // (no retained logs exist to compare).
    constexpr std::size_t kCeilingBytes = 2u << 20;  // 2 MiB per node
    ExperimentOptions options = ClusterExperiment(64, 40);
    options.log_mode = LogMode::kStreaming;
    options.skew.kind = SkewKind::kJitter;
    options.skew.jitter_amplitude = 0.3;
    apps::S3dApplication app(
        apps::S3dOptions{.machine = options.machine});
    const ExperimentResult result = RunExperiment(app, options);
    EXPECT_TRUE(result.streams_identical);
    EXPECT_GT(result.replayed_fraction, 0.0);
    ASSERT_EQ(result.node_metrics.size(), 64u);
    EXPECT_EQ(result.log_retired_ops, result.total_tasks);
    EXPECT_LT(result.log_peak_resident_bytes, kCeilingBytes)
        << "worst-node resident log exceeded the streaming ceiling";
}

}  // namespace
}  // namespace apo::sim
