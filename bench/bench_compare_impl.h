/**
 * @file
 * The bench_compare gate's implementation, header-only so the unit
 * tests (tests/bench_compare_test.cc) exercise the same parser,
 * direction typing and threshold logic the CI binary runs — the gate
 * that fails a PR must itself be tested.
 *
 * See bench/bench_compare.cc for the tool's contract and usage.
 */
#ifndef APOPHENIA_BENCH_BENCH_COMPARE_IMPL_H
#define APOPHENIA_BENCH_BENCH_COMPARE_IMPL_H

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"

namespace apo::bench {

/** Minimal JSON reader over the machine-written record files: collects
 * every numeric leaf under its dotted path. Throws std::runtime_error
 * on malformed input. */
class FlatJsonParser {
  public:
    explicit FlatJsonParser(const std::string& text) : text_(text) {}

    std::map<std::string, double> Parse()
    {
        values_.clear();
        at_ = 0;
        SkipSpace();
        ParseValue("");
        SkipSpace();
        if (at_ != text_.size()) {
            Fail("trailing content");
        }
        return values_;
    }

  private:
    [[noreturn]] void Fail(const char* what)
    {
        throw std::runtime_error(std::string("JSON parse error at byte ") +
                                 std::to_string(at_) + ": " + what);
    }

    void SkipSpace()
    {
        while (at_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[at_]))) {
            ++at_;
        }
    }

    char Peek()
    {
        if (at_ >= text_.size()) {
            Fail("unexpected end");
        }
        return text_[at_];
    }

    void Expect(char c)
    {
        if (Peek() != c) {
            Fail("unexpected character");
        }
        ++at_;
    }

    std::string ParseString()
    {
        Expect('"');
        std::string s;
        while (Peek() != '"') {
            char c = text_[at_++];
            if (c == '\\') {
                s.push_back(text_[at_++]);  // record files escape nothing
            } else {
                s.push_back(c);
            }
        }
        ++at_;  // closing quote
        return s;
    }

    void ParseValue(const std::string& path)
    {
        SkipSpace();
        const char c = Peek();
        if (c == '{') {
            ++at_;
            SkipSpace();
            if (Peek() == '}') {
                ++at_;
                return;
            }
            for (;;) {
                SkipSpace();
                const std::string key = ParseString();
                SkipSpace();
                Expect(':');
                ParseValue(path.empty() ? key : path + "." + key);
                SkipSpace();
                if (Peek() == ',') {
                    ++at_;
                    continue;
                }
                Expect('}');
                return;
            }
        }
        if (c == '[') {
            ++at_;
            SkipSpace();
            if (Peek() == ']') {
                ++at_;
                return;
            }
            for (std::size_t index = 0;; ++index) {
                ParseValue(path + "." + std::to_string(index));
                SkipSpace();
                if (Peek() == ',') {
                    ++at_;
                    continue;
                }
                Expect(']');
                return;
            }
        }
        if (c == '"') {
            ParseString();
            return;
        }
        if (std::strncmp(text_.c_str() + at_, "true", 4) == 0) {
            at_ += 4;
            return;
        }
        if (std::strncmp(text_.c_str() + at_, "false", 5) == 0) {
            at_ += 5;
            return;
        }
        if (std::strncmp(text_.c_str() + at_, "null", 4) == 0) {
            at_ += 4;
            return;
        }
        // Number.
        char* end = nullptr;
        const double value = std::strtod(text_.c_str() + at_, &end);
        if (end == text_.c_str() + at_) {
            Fail("expected a value");
        }
        at_ = static_cast<std::size_t>(end - text_.c_str());
        values_[path] = value;
    }

    const std::string& text_;
    std::size_t at_ = 0;
    std::map<std::string, double> values_;
};

inline bool EndsWith(const std::string& s, const char* suffix)
{
    const std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

enum class Direction { kHigherIsBetter, kLowerIsBetter, kUntracked };

inline Direction DirectionOf(const std::string& path)
{
    if (path.find("allocs_per") != std::string::npos) {
        return Direction::kLowerIsBetter;
    }
    if (EndsWith(path, "_per_sec") || EndsWith(path, "improvement") ||
        EndsWith(path, "speedup") || EndsWith(path, "hit_rate")) {
        return Direction::kHigherIsBetter;
    }
    return Direction::kUntracked;
}

inline bool MatchesAny(const std::string& path,
                       const std::vector<std::string>& patterns)
{
    if (patterns.empty()) {
        return true;
    }
    for (const std::string& pattern : patterns) {
        if (path.find(pattern) != std::string::npos) {
            return true;
        }
    }
    return false;
}

/** True iff `current` regressed vs `baseline` beyond `threshold`. A
 * zero baseline (e.g. allocs_per_window == 0, the contract value)
 * regresses on any materially nonzero bad-direction move. */
inline bool Regressed(Direction direction, double baseline, double current,
                      double threshold)
{
    if (direction == Direction::kHigherIsBetter) {
        if (baseline <= 0.0) {
            return false;  // no meaningful reference
        }
        return current < baseline * (1.0 - threshold);
    }
    if (baseline == 0.0) {
        return current > threshold;  // absolute gate off a hard zero
    }
    return current > baseline * (1.0 + threshold);
}

struct CompareOptions {
    std::string baseline_path;
    std::string current_path;
    double threshold = 0.10;
    std::vector<std::string> metrics;   ///< --metric= substrings
    std::vector<std::string> required;  ///< --require= substrings
};

/** The tool body behind argument parsing. Exit-code contract:
 * 0 ok; 1 regression; 2 parse failure or missing --require record. */
inline int RunBenchCompare(const CompareOptions& options,
                           std::FILE* out = stdout,
                           std::FILE* err = stderr)
{
    std::map<std::string, double> baseline;
    std::map<std::string, double> current;
    try {
        const std::string baseline_text =
            ReadFileOrEmpty(options.baseline_path);
        const std::string current_text =
            ReadFileOrEmpty(options.current_path);
        if (baseline_text.empty()) {
            std::fprintf(err, "bench_compare: cannot read %s\n",
                         options.baseline_path.c_str());
            return 2;
        }
        if (current_text.empty()) {
            std::fprintf(err, "bench_compare: cannot read %s\n",
                         options.current_path.c_str());
            return 2;
        }
        baseline = FlatJsonParser(baseline_text).Parse();
        current = FlatJsonParser(current_text).Parse();
    } catch (const std::exception& error) {
        std::fprintf(err, "bench_compare: %s\n", error.what());
        return 2;
    }

    // Required records must exist in the *current* file: a bench that
    // stops emitting a record must fail CI, not silently pass.
    for (const std::string& record : options.required) {
        bool found = false;
        for (const auto& [path, value] : current) {
            (void)value;
            if (path.find(record) != std::string::npos) {
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(err,
                         "bench_compare: required record \"%s\" is "
                         "missing from %s\n",
                         record.c_str(), options.current_path.c_str());
            return 2;
        }
    }

    int regressions = 0;
    int compared = 0;
    for (const auto& [path, base_value] : baseline) {
        const Direction direction = DirectionOf(path);
        if (direction == Direction::kUntracked ||
            !MatchesAny(path, options.metrics)) {
            continue;
        }
        const auto it = current.find(path);
        if (it == current.end()) {
            std::fprintf(out,
                         "  [dropped]    %-52s %12.3f -> (absent)\n",
                         path.c_str(), base_value);
            continue;
        }
        ++compared;
        const double now = it->second;
        const bool bad =
            Regressed(direction, base_value, now, options.threshold);
        const double ratio =
            base_value != 0.0 ? now / base_value : 0.0;
        std::fprintf(out, "  [%s] %-52s %12.3f -> %12.3f  (%.2fx, %s)\n",
                     bad ? "REGRESSED" : "ok       ", path.c_str(),
                     base_value, now, ratio,
                     direction == Direction::kHigherIsBetter
                         ? "higher is better"
                         : "lower is better");
        if (bad) {
            ++regressions;
        }
    }
    std::fprintf(out,
                 "bench_compare: %d metric(s) compared, %d regression(s) "
                 "(threshold %.0f%%)\n",
                 compared, regressions, options.threshold * 100.0);
    return regressions > 0 ? 1 : 0;
}

inline int BenchCompareUsage()
{
    std::fprintf(
        stderr,
        "usage: bench_compare --baseline=OLD.json --current=NEW.json\n"
        "                     [--threshold=0.10] [--metric=SUBSTR]...\n"
        "                     [--require=SUBSTR]...\n");
    return 2;
}

inline int BenchCompareMain(int argc, char** argv)
{
    CompareOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--baseline=", 0) == 0) {
            options.baseline_path = arg.substr(11);
        } else if (arg.rfind("--current=", 0) == 0) {
            options.current_path = arg.substr(10);
        } else if (arg.rfind("--threshold=", 0) == 0) {
            options.threshold = std::atof(arg.c_str() + 12);
        } else if (arg.rfind("--metric=", 0) == 0) {
            options.metrics.push_back(arg.substr(9));
        } else if (arg.rfind("--require=", 0) == 0) {
            options.required.push_back(arg.substr(10));
        } else {
            return BenchCompareUsage();
        }
    }
    if (options.baseline_path.empty() || options.current_path.empty() ||
        options.threshold <= 0.0) {
        return BenchCompareUsage();
    }
    return RunBenchCompare(options);
}

}  // namespace apo::bench

#endif  // APOPHENIA_BENCH_BENCH_COMPARE_IMPL_H
