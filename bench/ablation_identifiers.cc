/**
 * @file
 * Ablation (section 4.2): why Algorithm 2 instead of prior repeat
 * detectors. Compares the coverage each identifier achieves on
 * realistic task-history slices:
 *
 *  - a clean iterative loop (everything should work);
 *  - a loop interrupted by irregular convergence checks (tandem
 *    repeats collapse — the paper's stated reason for relaxing them);
 *  - a long-body loop seen only a few times (LZW-style detection
 *    cannot have grown candidates to the body length yet).
 */
#include <cstdio>

#include "apps/cfd.h"
#include "api/frontend.h"
#include "core/config.h"
#include "core/finder.h"
#include "strings/identifiers.h"
#include "strings/repeats.h"

namespace {

using namespace apo;

strings::Sequence CleanLoop(std::size_t n)
{
    strings::Sequence s;
    for (std::size_t i = 0; i < n; ++i) {
        s.push_back(i % 60);
    }
    return s;
}

strings::Sequence InterruptedLoop(std::size_t n)
{
    strings::Sequence s;
    std::uint64_t noise = 1u << 24;
    for (std::size_t i = 0; s.size() < n; ++i) {
        s.push_back(i % 60);
        if (i % 47 == 46) {
            s.push_back(noise++);  // convergence check / stats task
        }
    }
    s.resize(n);
    return s;
}

strings::Sequence FewSightingsLongBody(std::size_t body, std::size_t reps)
{
    strings::Sequence s;
    for (std::size_t r = 0; r < reps; ++r) {
        for (std::size_t i = 0; i < body; ++i) {
            s.push_back(1000 + i);
        }
    }
    return s;
}

/** Task-history slice of the real CFD skeleton (region renaming). */
strings::Sequence CfdSlice(std::size_t iterations)
{
    rt::Runtime runtime;
    api::DirectFrontend fe(runtime);
    apps::CfdOptions options;
    options.machine.nodes = 1;
    options.machine.gpus_per_node = 4;
    apps::CfdApplication app(options);
    app.Setup(fe);
    for (std::size_t i = 0; i < iterations; ++i) {
        app.Iteration(fe, i, false);
    }
    strings::Sequence s;
    for (const auto& op : runtime.Log()) {
        s.push_back(op.token);
    }
    return s;
}

void Row(const char* stream_name, const strings::Sequence& s,
         std::size_t min_length)
{
    const double n = static_cast<double>(s.size());
    const auto ours =
        strings::FindRepeats(s, {.min_length = min_length});
    const auto tandem = strings::FindTandemRepeats(s, min_length);
    const auto lzw = strings::FindRepeatsLzw(s, min_length);
    const auto quad = strings::FindRepeatsQuadratic(s, min_length);
    std::printf("%-22s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", stream_name,
                100.0 * strings::TotalCoverage(ours) / n,
                100.0 * strings::TotalCoverage(tandem) / n,
                100.0 * strings::TotalCoverage(lzw) / n,
                100.0 * strings::TotalCoverage(quad) / n);
}

}  // namespace

int
main()
{
    std::printf("# Ablation: trace-identifier coverage by algorithm\n");
    std::printf("%-22s %10s %10s %10s %10s\n", "stream", "alg2", "tandem",
                "lzw", "quadratic");
    Row("clean-loop", CleanLoop(3000), 20);
    Row("interrupted-loop", InterruptedLoop(3000), 20);
    Row("long-body-few-reps", FewSightingsLongBody(800, 4), 20);
    Row("cfd-region-renaming", CfdSlice(80), 20);
    std::printf(
        "\n# paper: tandem repeats fail on interrupted loops; LZW needs"
        " ~n sightings for a\n# length-n trace; Algorithm 2 retains high"
        " coverage everywhere at O(n log n).\n");
    return 0;
}
