/**
 * @file
 * Section 6.3 (table): Apophenia's per-task-launch overhead, measured
 * in real wall-clock time on this machine.
 *
 * Paper result: launching a task into Legion takes ~7µs without and
 * ~12µs with Apophenia — the +5µs front-end cost (hashing, trie
 * traversal, history bookkeeping) is far below the ~100µs cost of
 * replaying a task, so it hides behind the asynchronous pipeline.
 * Here we measure our own front-end's per-launch work: the hash, the
 * finder's history append + sampling checks, and the replayer's
 * pointer advancement — the same code paths, on laptop hardware, so
 * the absolute numbers are smaller but the *relationship* (front-end
 * overhead ≪ per-task replay work) is the reproduction target.
 */
#include <benchmark/benchmark.h>

#include "apps/s3d.h"
#include "api/frontend.h"
#include "core/apophenia.h"
#include "runtime/runtime.h"

namespace {

using namespace apo;

apps::MachineConfig BenchMachine()
{
    apps::MachineConfig m;
    m.nodes = 2;
    m.gpus_per_node = 2;
    return m;
}

/** Pre-generate a realistic launch stream (S3D skeleton). */
std::vector<rt::TaskLaunch> MakeStream(std::size_t iterations)
{
    rt::Runtime staging;
    api::DirectFrontend fe(staging);
    apps::S3dOptions options;
    options.machine = BenchMachine();
    apps::S3dApplication app(options);
    app.Setup(fe);
    for (std::size_t i = 0; i < iterations; ++i) {
        app.Iteration(fe, i, false);
    }
    std::vector<rt::TaskLaunch> launches;
    launches.reserve(staging.Log().size());
    for (const auto& op : staging.Log()) {
        launches.push_back(op.launch.Materialize());
    }
    return launches;
}

/** Baseline: hash the launch only (the cheapest possible front-end). */
void BM_HashLaunch(benchmark::State& state)
{
    const auto stream = MakeStream(20);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rt::HashLaunch(stream[i]));
        i = (i + 1) % stream.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashLaunch);

/** Task launch straight into the runtime (dependence analysis). */
void BM_LaunchUntraced(benchmark::State& state)
{
    const auto stream = MakeStream(200);
    rt::Runtime runtime;
    std::size_t i = 0;
    for (auto _ : state) {
        if (i == stream.size()) {
            state.PauseTiming();
            runtime = rt::Runtime();  // avoid unbounded log growth
            i = 0;
            state.ResumeTiming();
        }
        runtime.ExecuteTask(stream[i++]);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LaunchUntraced);

/** Task launch through the Apophenia front-end (hash + finder +
 * replayer bookkeeping + forwarding). */
void BM_LaunchWithApophenia(benchmark::State& state)
{
    const auto stream = MakeStream(200);
    core::ApopheniaConfig config;
    config.min_trace_length = 25;
    config.batchsize = 5000;
    config.multi_scale_factor = 250;
    auto runtime = std::make_unique<rt::Runtime>();
    auto fe = std::make_unique<core::Apophenia>(*runtime, config);
    std::size_t i = 0;
    for (auto _ : state) {
        if (i == stream.size()) {
            state.PauseTiming();
            runtime = std::make_unique<rt::Runtime>();
            fe = std::make_unique<core::Apophenia>(*runtime, config);
            i = 0;
            state.ResumeTiming();
        }
        fe->ExecuteTask(stream[i++]);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LaunchWithApophenia);

}  // namespace

BENCHMARK_MAIN();
