/**
 * @file
 * Shared helpers for the figure-reproduction benchmarks: machine
 * models for the paper's two systems, the artifact's Apophenia
 * configuration, and table printing.
 *
 * Absolute throughputs are simulated (see DESIGN.md section 4.1) and
 * are not expected to match the paper's hardware numbers; the *shapes*
 * — who wins, by what factor, where the crossovers are — are the
 * reproduction target, and EXPERIMENTS.md records both.
 */
#ifndef APOPHENIA_BENCH_BENCH_UTIL_H
#define APOPHENIA_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/app.h"
#include "core/config.h"
#include "sim/harness.h"

namespace apo::bench {

// -- JSON record-file helpers (BENCH_micro_repeats.json) --------------------
//
// The perf-record file is one JSON object shared by several writers:
// micro_repeats rewrites its own members, fig_replication_scaling
// merges its section in, and each must preserve the other's records.
// These helpers locate a `"key": {...}` member without a JSON
// library: by key search plus brace counting (the file is machine-
// written, so no braces hide inside strings).

inline std::string ReadFileOrEmpty(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        return "";
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Locate `"key": {...}`: on success, `member_begin` is the quoted
 * key's position and [value_begin, value_end) delimits the member's
 * object value (braces included). */
inline bool FindJsonMember(const std::string& content,
                           const std::string& key,
                           std::size_t* member_begin,
                           std::size_t* value_begin,
                           std::size_t* value_end)
{
    const std::string quoted = "\"" + key + "\"";
    const std::size_t at = content.find(quoted);
    if (at == std::string::npos) {
        return false;
    }
    const std::size_t open = content.find('{', at + quoted.size());
    if (open == std::string::npos) {
        return false;
    }
    std::size_t end = open;
    int depth = 0;
    while (end < content.size()) {
        if (content[end] == '{') {
            ++depth;
        } else if (content[end] == '}' && --depth == 0) {
            ++end;
            break;
        }
        ++end;
    }
    *member_begin = at;
    *value_begin = open;
    *value_end = end;
    return true;
}

/** The member's `{...}` value text, or "" if absent. */
inline std::string ExtractJsonMember(const std::string& content,
                                     const std::string& key)
{
    std::size_t member = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
    if (!FindJsonMember(content, key, &member, &begin, &end)) {
        return "";
    }
    return content.substr(begin, end - begin);
}

/** Erase the member plus its separating comma (the preceding one when
 * the member is last, the following one otherwise). */
inline void RemoveJsonMember(std::string& content, const std::string& key)
{
    std::size_t member = 0;
    std::size_t value = 0;
    std::size_t end = 0;
    if (!FindJsonMember(content, key, &member, &value, &end)) {
        return;
    }
    std::size_t begin = member;
    while (begin > 0 && (content[begin - 1] == ' ' ||
                         content[begin - 1] == '\n' ||
                         content[begin - 1] == '\t')) {
        --begin;
    }
    bool ate_leading_comma = false;
    if (begin > 0 && content[begin - 1] == ',') {
        --begin;
        ate_leading_comma = true;
    }
    if (!ate_leading_comma) {
        while (end < content.size() &&
               (content[end] == ' ' || content[end] == '\n')) {
            ++end;
        }
        if (end < content.size() && content[end] == ',') {
            ++end;
        }
    }
    content.erase(begin, end - begin);
}

/** Replace an existing member's `{...}` value in place, keeping the
 * member's position in the file — repeated merges by different
 * writers must not shuffle record order, or every bench run produces
 * a noisy whole-file diff. Returns false when the key is absent (the
 * caller appends instead). */
inline bool ReplaceJsonMember(std::string& content, const std::string& key,
                              const std::string& section)
{
    std::size_t member = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
    if (!FindJsonMember(content, key, &member, &begin, &end)) {
        return false;
    }
    content.replace(begin, end - begin, section);
    return true;
}

/** Merge `"key": {...section...}` into the JSON object file at
 * `path`, replacing the member in place when it exists (stable member
 * order keeps re-runs to value-only diffs) and appending it
 * otherwise. Creates the file when absent. Returns 0 on success. */
inline int MergeIntoJson(const std::string& path, const std::string& key,
                         const std::string& section)
{
    std::string content = ReadFileOrEmpty(path);
    if (content.empty()) {
        content = "{\n}\n";
    }
    if (ReplaceJsonMember(content, key, section)) {
        std::ofstream out(path, std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return 1;
        }
        out << content;
        return 0;
    }
    std::size_t close = content.rfind('}');
    if (close == std::string::npos) {
        std::fprintf(stderr, "%s is not a JSON object\n", path.c_str());
        return 1;
    }
    std::size_t tail = close;
    while (tail > 0 && (content[tail - 1] == ' ' ||
                        content[tail - 1] == '\n' ||
                        content[tail - 1] == '\t' ||
                        content[tail - 1] == ',')) {
        --tail;
    }
    const bool has_members = content.find('"') < tail;
    content.erase(tail);
    content += has_members ? ",\n" : "\n";
    content += "  \"" + key + "\": " + section + "\n}\n";

    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    out << content;
    return 0;
}

/** The host's thread count as every bench section records it —
 * wall-clock-derived metrics (speedups, tokens/sec) are only
 * comparable across record generations with the host pinned next to
 * them. Never 0 (the unknown-hardware fallback is 1). */
inline unsigned HardwareConcurrency()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

/** The host-pinning JSON fragment every bench section embeds next to
 * its wall-clock metrics: `"hardware_concurrency": N`, plus
 * `"apo_jobs": J` when the APO_JOBS thread-count override is set to
 * a positive number — a record produced under an override is only
 * comparable to records produced under the same one, so the override
 * is pinned in the record rather than silently shaping it. (A set
 * but non-numeric/zero APO_JOBS is ignored here exactly as the
 * engine ignores it.) No trailing comma. */
inline std::string ConcurrencyJson()
{
    std::string out = "\"hardware_concurrency\": " +
                      std::to_string(HardwareConcurrency());
    if (const char* jobs = std::getenv("APO_JOBS")) {
        char* end = nullptr;
        const unsigned long value = std::strtoul(jobs, &end, 10);
        if (end != jobs && *end == '\0' && value > 0) {
            out += ", \"apo_jobs\": " + std::to_string(value);
        }
    }
    return out;
}

/** Perlmutter: 4 NVIDIA A100s per node (paper section 6). */
inline apps::MachineConfig Perlmutter(std::size_t gpus)
{
    apps::MachineConfig m;
    m.gpus_per_node = 4;
    m.nodes = std::max<std::size_t>(1, gpus / m.gpus_per_node);
    if (gpus < m.gpus_per_node) {
        m.gpus_per_node = gpus;
    }
    return m;
}

/** Eos: 8 NVIDIA H100s per node (paper section 6). */
inline apps::MachineConfig Eos(std::size_t gpus)
{
    apps::MachineConfig m;
    m.gpus_per_node = 8;
    m.nodes = std::max<std::size_t>(1, gpus / m.gpus_per_node);
    if (gpus < m.gpus_per_node) {
        m.gpus_per_node = gpus;
    }
    return m;
}

/** The artifact's standard Apophenia configuration (appendix A.5). */
inline core::ApopheniaConfig ArtifactConfig()
{
    core::ApopheniaConfig config;
    config.min_trace_length = 25;
    config.max_trace_length = 5000;
    config.batchsize = 5000;
    config.multi_scale_factor = 250;
    return config;
}

/** Tracks the min/max of a ratio across a sweep (the "0.92x-1.03x"
 * style bands the paper reports). */
class RatioBand {
  public:
    void Add(double value)
    {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
        seen_ = true;
    }
    std::string Format() const
    {
        if (!seen_) {
            return "n/a";
        }
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.2fx-%.2fx", min_, max_);
        return buf;
    }

  private:
    double min_ = 1e300;
    double max_ = -1e300;
    bool seen_ = false;
};

/** Run one experiment with a freshly constructed application. */
template <typename App, typename Options>
sim::ExperimentResult RunOne(const Options& app_options,
                             sim::TracingMode mode,
                             const apps::MachineConfig& machine,
                             std::size_t iterations,
                             const core::ApopheniaConfig& auto_config)
{
    App app(app_options);
    sim::ExperimentOptions options;
    options.mode = mode;
    options.machine = machine;
    options.iterations = iterations;
    options.auto_config = auto_config;
    return sim::RunExperiment(app, options);
}

}  // namespace apo::bench

#endif  // APOPHENIA_BENCH_BENCH_UTIL_H
