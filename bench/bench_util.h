/**
 * @file
 * Shared helpers for the figure-reproduction benchmarks: machine
 * models for the paper's two systems, the artifact's Apophenia
 * configuration, and table printing.
 *
 * Absolute throughputs are simulated (see DESIGN.md section 4.1) and
 * are not expected to match the paper's hardware numbers; the *shapes*
 * — who wins, by what factor, where the crossovers are — are the
 * reproduction target, and EXPERIMENTS.md records both.
 */
#ifndef APOPHENIA_BENCH_BENCH_UTIL_H
#define APOPHENIA_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/app.h"
#include "core/config.h"
#include "sim/harness.h"

namespace apo::bench {

/** Perlmutter: 4 NVIDIA A100s per node (paper section 6). */
inline apps::MachineConfig Perlmutter(std::size_t gpus)
{
    apps::MachineConfig m;
    m.gpus_per_node = 4;
    m.nodes = std::max<std::size_t>(1, gpus / m.gpus_per_node);
    if (gpus < m.gpus_per_node) {
        m.gpus_per_node = gpus;
    }
    return m;
}

/** Eos: 8 NVIDIA H100s per node (paper section 6). */
inline apps::MachineConfig Eos(std::size_t gpus)
{
    apps::MachineConfig m;
    m.gpus_per_node = 8;
    m.nodes = std::max<std::size_t>(1, gpus / m.gpus_per_node);
    if (gpus < m.gpus_per_node) {
        m.gpus_per_node = gpus;
    }
    return m;
}

/** The artifact's standard Apophenia configuration (appendix A.5). */
inline core::ApopheniaConfig ArtifactConfig()
{
    core::ApopheniaConfig config;
    config.min_trace_length = 25;
    config.max_trace_length = 5000;
    config.batchsize = 5000;
    config.multi_scale_factor = 250;
    return config;
}

/** Tracks the min/max of a ratio across a sweep (the "0.92x-1.03x"
 * style bands the paper reports). */
class RatioBand {
  public:
    void Add(double value)
    {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
        seen_ = true;
    }
    std::string Format() const
    {
        if (!seen_) {
            return "n/a";
        }
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.2fx-%.2fx", min_, max_);
        return buf;
    }

  private:
    double min_ = 1e300;
    double max_ = -1e300;
    bool seen_ = false;
};

/** Run one experiment with a freshly constructed application. */
template <typename App, typename Options>
sim::ExperimentResult RunOne(const Options& app_options,
                             sim::TracingMode mode,
                             const apps::MachineConfig& machine,
                             std::size_t iterations,
                             const core::ApopheniaConfig& auto_config)
{
    App app(app_options);
    sim::ExperimentOptions options;
    options.mode = mode;
    options.machine = machine;
    options.iterations = iterations;
    options.auto_config = auto_config;
    return sim::RunExperiment(app, options);
}

}  // namespace apo::bench

#endif  // APOPHENIA_BENCH_BENCH_UTIL_H
