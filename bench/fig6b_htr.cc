/**
 * @file
 * Figure 6b: HTR weak scaling on the Perlmutter model.
 *
 * Paper result: Apophenia achieves 0.99x-1.01x of the manually traced
 * HTR and 0.96x-1.21x over untraced; untraced is competitive at small
 * GPU counts but tracing is necessary for performance at scale.
 */
#include <cstdio>

#include "apps/htr.h"
#include "bench_util.h"

int
main()
{
    using namespace apo;
    using bench::RunOne;

    std::printf("# Figure 6b: HTR weak scaling (Perlmutter model, 4 "
                "GPUs/node)\n");
    std::printf("# steady-state throughput, iterations/second\n");
    std::printf("%-5s %-4s %10s %10s %10s %13s %14s\n", "gpus", "size",
                "untraced", "manual", "auto", "auto/manual",
                "auto/untraced");

    bench::RatioBand vs_manual, vs_untraced;
    const std::size_t iterations = 80;
    for (const std::size_t gpus : {4, 8, 16, 32, 64}) {
        const apps::MachineConfig machine = bench::Perlmutter(gpus);
        for (const auto size :
             {apps::ProblemSize::kSmall, apps::ProblemSize::kMedium,
              apps::ProblemSize::kLarge}) {
            apps::HtrOptions options;
            options.machine = machine;
            options.size = size;
            const auto auto_config = bench::ArtifactConfig();
            const auto untraced = RunOne<apps::HtrApplication>(
                options, sim::TracingMode::kUntraced, machine, iterations,
                auto_config);
            const auto manual = RunOne<apps::HtrApplication>(
                options, sim::TracingMode::kManual, machine, iterations,
                auto_config);
            const auto automatic = RunOne<apps::HtrApplication>(
                options, sim::TracingMode::kAuto, machine, iterations,
                auto_config);
            const double rm = automatic.iterations_per_second /
                              manual.iterations_per_second;
            const double ru = automatic.iterations_per_second /
                              untraced.iterations_per_second;
            vs_manual.Add(rm);
            vs_untraced.Add(ru);
            std::printf("%-5zu %-4s %10.2f %10.2f %10.2f %13.2f %14.2f\n",
                        gpus, apps::SizeSuffix(size).data(),
                        untraced.iterations_per_second,
                        manual.iterations_per_second,
                        automatic.iterations_per_second, rm, ru);
        }
    }
    std::printf("\n# paper: auto within 0.99x-1.01x of manual;"
                " 0.96x-1.21x over untraced\n");
    std::printf("measured: auto/manual %s; auto/untraced %s\n",
                vs_manual.Format().c_str(), vs_untraced.Format().c_str());
    return 0;
}
