/**
 * @file
 * Ablation (section 4.4): the ruler-function multi-scale sampling
 * versus whole-buffer ("batched") analysis.
 *
 * The buffer size trades responsiveness against trace length: small
 * buffers find short traces quickly but miss long loops; large
 * buffers find long traces but delay everything. Multi-scale sampling
 * of one large buffer gets both: quick reaction on short-loop
 * applications and full-buffer mining for long loops — for one extra
 * log factor of analysis work. This bench measures warmup (iterations
 * until a replaying steady state) and replayed coverage for a short
 * loop and a long loop under both identifier schedules.
 */
#include <cstdio>

#include "api/frontend.h"
#include "core/apophenia.h"
#include "runtime/runtime.h"

namespace {

using namespace apo;

struct Outcome {
    std::size_t warmup_tasks = 0;  // first task index inside a replay
    double replayed_fraction = 0.0;
};

Outcome Run(const core::ApopheniaConfig& config, std::size_t body,
            std::size_t iterations)
{
    rt::Runtime runtime;
    core::Apophenia fe(runtime, config);
    std::vector<rt::RegionId> regions;
    for (std::size_t i = 0; i < body; ++i) {
        regions.push_back(fe.CreateRegion());
    }
    for (std::size_t it = 0; it < iterations; ++it) {
        for (std::size_t i = 0; i < body; ++i) {
            fe.ExecuteTask(rt::TaskLaunch{
                100 + static_cast<rt::TaskId>(i),
                {{regions[i], 0, rt::Privilege::kReadOnly, 0},
                 {regions[(i + 1) % body], 0, rt::Privilege::kReadWrite,
                  0}}});
        }
    }
    fe.Flush();
    Outcome out;
    out.replayed_fraction = runtime.Stats().ReplayedFraction();
    out.warmup_tasks = runtime.Log().size();
    for (std::size_t i = 0; i < runtime.Log().size(); ++i) {
        if (runtime.Log()[i].mode == rt::AnalysisMode::kReplayed) {
            out.warmup_tasks = i;
            break;
        }
    }
    return out;
}

void Row(const char* name, const core::ApopheniaConfig& config,
         std::size_t body, std::size_t iterations)
{
    const Outcome out = Run(config, body, iterations);
    std::printf("%-14s %-12s %13zu %10.1f%%\n", name,
                body <= 50 ? "short-loop" : "long-loop", out.warmup_tasks,
                100.0 * out.replayed_fraction);
}

}  // namespace

int
main()
{
    std::printf("# Ablation: multi-scale sampling vs whole-buffer"
                " analysis\n");
    std::printf("%-14s %-12s %13s %10s\n", "identifier", "workload",
                "first-replay", "replayed");

    core::ApopheniaConfig multi;
    multi.min_trace_length = 10;
    multi.batchsize = 4000;
    multi.multi_scale_factor = 100;
    multi.identifier_algorithm = core::IdentifierAlgorithm::kMultiScale;
    core::ApopheniaConfig batched = multi;
    batched.identifier_algorithm = core::IdentifierAlgorithm::kBatched;

    // Short loop: 30-task body. Multi-scale reacts after ~2 bodies;
    // batched waits for the full 4000-token buffer.
    Row("multi-scale", multi, 30, 300);
    Row("batched", batched, 30, 300);
    // Long loop: 1500-task body; both need most of the buffer.
    Row("multi-scale", multi, 1500, 12);
    Row("batched", batched, 1500, 12);

    std::printf("\n# paper: one buffer size + ruler-function sampling"
                " serves both regimes\n# (short traces found early, long"
                " traces still found), at one extra log factor.\n");
    return 0;
}
