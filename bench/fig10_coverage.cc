/**
 * @file
 * Figure 10: visualization of Apophenia finding traces in S3D.
 *
 * For each task issued by a 70-iteration S3D run, plot how many of the
 * previous 5000 tasks were traced. Expected shape: near zero during
 * startup while Apophenia searches, a steep climb as traces are
 * recorded and replayed, then a high plateau, improving slightly late
 * in the run as better trace sets displace early ones.
 */
#include <cstdio>

#include "apps/s3d.h"
#include "bench_util.h"

int
main()
{
    using namespace apo;

    apps::S3dOptions options;
    options.machine = bench::Perlmutter(16);
    apps::S3dApplication app(options);

    sim::ExperimentOptions experiment;
    experiment.mode = sim::TracingMode::kAuto;
    experiment.machine = options.machine;
    experiment.iterations = 70;
    experiment.auto_config = bench::ArtifactConfig();
    experiment.keep_coverage_series = true;
    experiment.coverage_window = 5000;
    experiment.coverage_stride = 250;
    const auto result = sim::RunExperiment(app, experiment);

    std::printf("# Figure 10: %% of the previous 5000 tasks traced, S3D"
                " (70 iterations, 16 GPUs)\n");
    std::printf("%-12s %9s  %s\n", "task_index", "traced%", "bar");
    for (const auto& [index, pct] : result.coverage_series) {
        const int bars = static_cast<int>(pct / 2.5);
        std::printf("%-12zu %8.1f%%  ", index, pct);
        for (int i = 0; i < bars; ++i) {
            std::putchar('#');
        }
        std::putchar('\n');
    }
    const double plateau = result.coverage_series.back().second;
    std::printf("\n# paper: startup search then a steady plateau with a"
                " slight late improvement\n");
    std::printf("final window coverage: %.1f%% (replayed fraction overall:"
                " %.2f)\n",
                plateau, result.replayed_fraction);
    return 0;
}
