/**
 * @file
 * Figure 7b: TorchSWE weak scaling on the Eos model.
 *
 * Paper result: TorchSWE (the largest cuPyNumeric application; no
 * manually traced version is practical) cannot hide untraced runtime
 * overhead at *any* problem size; with Apophenia it achieves
 * 0.91x-2.82x over untraced and nearly perfect weak scaling at 64
 * GPUs.
 */
#include <cstdio>

#include "apps/torchswe.h"
#include "bench_util.h"

int
main()
{
    using namespace apo;
    using bench::RunOne;

    std::printf(
        "# Figure 7b: TorchSWE weak scaling (Eos model, 8 GPUs/node)\n");
    std::printf("# steady-state throughput, iterations/second\n");
    std::printf("%-5s %-4s %10s %10s %14s\n", "gpus", "size", "untraced",
                "auto", "auto/untraced");

    bench::RatioBand vs_untraced;
    const std::size_t iterations = 120;
    for (const std::size_t gpus : {1, 2, 4, 8, 16, 32, 64}) {
        const apps::MachineConfig machine = bench::Eos(gpus);
        for (const auto size :
             {apps::ProblemSize::kSmall, apps::ProblemSize::kMedium,
              apps::ProblemSize::kLarge}) {
            apps::TorchSweOptions options;
            options.machine = machine;
            options.size = size;
            const auto auto_config = bench::ArtifactConfig();
            const auto untraced = RunOne<apps::TorchSweApplication>(
                options, sim::TracingMode::kUntraced, machine, iterations,
                auto_config);
            const auto automatic = RunOne<apps::TorchSweApplication>(
                options, sim::TracingMode::kAuto, machine, iterations,
                auto_config);
            const double ru = automatic.iterations_per_second /
                              untraced.iterations_per_second;
            vs_untraced.Add(ru);
            std::printf("%-5zu %-4s %10.2f %10.2f %14.2f\n", gpus,
                        apps::SizeSuffix(size).data(),
                        untraced.iterations_per_second,
                        automatic.iterations_per_second, ru);
        }
    }
    std::printf("\n# paper: auto 0.91x-2.82x over untraced; near-perfect"
                " scaling at 64 GPUs with tracing\n");
    std::printf("measured: auto/untraced %s\n", vs_untraced.Format().c_str());
    return 0;
}
