/**
 * @file
 * Ablation: replay-boundary-anchored analysis windows.
 *
 * Apophenia's history mining produces candidates whose phase is
 * determined by where the analysis window happened to start. On
 * streams whose period is incommensurate with the sampling schedule,
 * the replayer can lock onto a sub-period trace: every replay kills
 * the in-progress matches of anything longer, and no candidate exists
 * at the phases the fired trace leaves uncovered. Anchoring extra
 * mining windows at replay boundaries (a design extension documented
 * in DESIGN.md) makes the finder produce exactly the complement/full-
 * period candidates, unlocking full coverage. This is also the
 * mechanism behind the long cuPyNumeric warmups of paper figure 9.
 */
#include <cstdio>

#include "api/frontend.h"
#include "apps/torchswe.h"
#include "core/apophenia.h"
#include "runtime/runtime.h"

namespace {

using namespace apo;

double Run(bool anchored, bool speculative)
{
    core::ApopheniaConfig config;
    config.min_trace_length = 10;
    config.batchsize = 2000;
    config.multi_scale_factor = 100;
    config.replay_anchored_analysis = anchored;
    config.speculative_period_completion = speculative;
    rt::Runtime runtime;
    core::Apophenia fe(runtime, config);
    apps::TorchSweOptions options;
    options.machine.nodes = 2;
    options.machine.gpus_per_node = 2;
    options.allocation_pool_budget = 100;  // short pool warmup
    apps::TorchSweApplication app(options);
    app.Setup(fe);
    for (int i = 0; i < 200; ++i) {
        app.Iteration(fe, i, false);
    }
    fe.Flush();
    return runtime.Stats().ReplayedFraction();
}

}  // namespace

int
main()
{
    std::printf("# Ablation: phase-alignment aids in the finder\n");
    std::printf("%-34s %10s\n", "configuration", "replayed");
    std::printf("%-34s %9.1f%%\n", "anchored+speculative (default)",
                100.0 * Run(true, true));
    std::printf("%-34s %9.1f%%\n", "anchored only", 100.0 * Run(true, false));
    std::printf("%-34s %9.1f%%\n", "speculative only",
                100.0 * Run(false, true));
    std::printf("%-34s %9.1f%%\n", "neither", 100.0 * Run(false, false));
    std::printf("\n# with neither aid, a half-period trace locks the"
                " replayer out of the\n# candidates needed to cover the"
                " rest of the stream (every replay kills\n# longer"
                " in-progress matches, and no candidate starts at the"
                " gap phases).\n");
    return 0;
}
