/**
 * @file
 * Section 4.2 microbenchmarks: the repeat-mining algorithm's
 * O(n log n) scaling, the suffix-array constructions, and the
 * quadratic baseline for contrast.
 *
 * The paper requires the finder to scale to buffers of several
 * thousand tokens (real traces exceed 2000 tasks); Algorithm 2's
 * near-linear growth vs the quadratic baseline's blow-up is the
 * claim being validated.
 */
#include <benchmark/benchmark.h>

#include "strings/identifiers.h"
#include "strings/repeats.h"
#include "strings/suffix_array.h"
#include "support/rng.h"

namespace {

using namespace apo;

/** A periodic token stream with occasional noise — the task-history
 * shape the finder actually sees. */
strings::Sequence AppLikeStream(std::size_t n)
{
    strings::Sequence s;
    s.reserve(n);
    std::uint64_t noise = 1u << 20;
    for (std::size_t i = 0; s.size() < n; ++i) {
        if (i % 97 == 96) {
            s.push_back(noise++);
        }
        s.push_back(i % 64);
    }
    s.resize(n);
    return s;
}

void BM_FindRepeats(benchmark::State& state)
{
    const auto s = AppLikeStream(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            strings::FindRepeats(s, {.min_length = 25}));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FindRepeats)->RangeMultiplier(2)->Range(512, 16384)->Complexity(
    benchmark::oNLogN);

void BM_SuffixArraySais(benchmark::State& state)
{
    const auto s = AppLikeStream(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            strings::BuildSuffixArray(s, strings::SuffixAlgorithm::kSais));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SuffixArraySais)->RangeMultiplier(4)->Range(512, 32768);

void BM_SuffixArrayDoubling(benchmark::State& state)
{
    const auto s = AppLikeStream(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(strings::BuildSuffixArray(
            s, strings::SuffixAlgorithm::kPrefixDoubling));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SuffixArrayDoubling)->RangeMultiplier(4)->Range(512, 32768);

void BM_QuadraticBaseline(benchmark::State& state)
{
    const auto s = AppLikeStream(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            strings::FindRepeatsQuadratic(s, 25));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_QuadraticBaseline)->RangeMultiplier(2)->Range(512, 4096);

}  // namespace

BENCHMARK_MAIN();
