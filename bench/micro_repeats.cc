/**
 * @file
 * Section 4.2 microbenchmarks: the repeat-mining algorithm's
 * O(n log n) scaling, the suffix-array constructions, the quadratic
 * baseline for contrast — and the finder's application-thread launch
 * path, where the zero-copy history snapshots earn their keep.
 *
 * The paper requires the finder to scale to buffers of several
 * thousand tokens (real traces exceed 2000 tasks) *and* to never
 * stall the application (section 4.3). The launch-path measurement
 * drives TraceFinder::Observe on a mining-heavy configuration with
 * the per-job work discarded, isolating what the application thread
 * pays per token: with zero-copy snapshots that is O(slice/block)
 * reference bumps per job; with the copy_slices_at_launch ablation it
 * is the seed's O(slice) token copy. The result is recorded to
 * BENCH_micro_repeats.json so successive PRs keep a perf trajectory.
 *
 * Usage:
 *   micro_repeats                      # launch-path record + JSON
 *   micro_repeats --benchmark_filter=. # also run the google benches
 *   micro_repeats --json=PATH          # JSON output path
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/frontend.h"
#include "api/launch.h"
#include "bench_util.h"
#include "core/finder.h"
#include "core/steady_miner.h"
#include "runtime/oplog.h"
#include "sim/cluster.h"
#include "strings/identifiers.h"
#include "strings/repeats.h"
#include "strings/suffix_array.h"
#include "support/executor.h"
#include "support/rng.h"

#include "support/counting_allocator.h"

namespace {

using namespace apo;

/** A periodic token stream with occasional noise — the task-history
 * shape the finder actually sees. */
strings::Sequence AppLikeStream(std::size_t n)
{
    strings::Sequence s;
    s.reserve(n);
    std::uint64_t noise = 1u << 20;
    for (std::size_t i = 0; s.size() < n; ++i) {
        if (i % 97 == 96) {
            s.push_back(noise++);
        }
        s.push_back(i % 64);
    }
    s.resize(n);
    return s;
}

void BM_FindRepeats(benchmark::State& state)
{
    const auto s = AppLikeStream(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            strings::FindRepeats(s, {.min_length = 25}));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FindRepeats)->RangeMultiplier(2)->Range(512, 16384)->Complexity(
    benchmark::oNLogN);

void BM_SuffixArraySais(benchmark::State& state)
{
    const auto s = AppLikeStream(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            strings::BuildSuffixArray(s, strings::SuffixAlgorithm::kSais));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SuffixArraySais)->RangeMultiplier(4)->Range(512, 32768);

void BM_SuffixArrayDoubling(benchmark::State& state)
{
    const auto s = AppLikeStream(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(strings::BuildSuffixArray(
            s, strings::SuffixAlgorithm::kPrefixDoubling));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SuffixArrayDoubling)->RangeMultiplier(4)->Range(512, 32768);

void BM_QuadraticBaseline(benchmark::State& state)
{
    const auto s = AppLikeStream(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            strings::FindRepeatsQuadratic(s, 25));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_QuadraticBaseline)->RangeMultiplier(2)->Range(512, 4096);

// ---------------------------------------------------------------------------
// Finder launch-path throughput (the zero-copy claim).

/** Drops every job: the measurement sees only the application-thread
 * half of a launch (history append, snapshot or slice copy). */
class DiscardExecutor final : public support::Executor {
  public:
    using Executor::Submit;
    void Submit(std::function<void()>) override {}
    void Drain() override {}
};

/** The mining-heavy configuration: a job every 32 tokens against a
 * 4096-token window. */
core::ApopheniaConfig MiningHeavyConfig()
{
    core::ApopheniaConfig config;
    config.min_trace_length = 8;
    config.batchsize = 4096;
    config.multi_scale_factor = 32;
    return config;
}

struct LaunchPathResult {
    double tokens_per_sec = 0.0;
    std::uint64_t jobs_launched = 0;
    std::uint64_t tokens_analyzed = 0;
};

LaunchPathResult MeasureLaunchPath(bool copy_slices, std::size_t tokens,
                                   int reps)
{
    const strings::Sequence stream = AppLikeStream(tokens);
    LaunchPathResult best;
    for (int rep = 0; rep < reps; ++rep) {
        core::ApopheniaConfig config = MiningHeavyConfig();
        config.copy_slices_at_launch = copy_slices;
        DiscardExecutor executor;
        core::TraceFinder finder(config, executor);
        const auto start = std::chrono::steady_clock::now();
        std::uint64_t now = 0;
        for (const auto token : stream) {
            finder.Observe(token, ++now);
        }
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        const double rate = static_cast<double>(tokens) / elapsed.count();
        if (rate > best.tokens_per_sec) {
            best.tokens_per_sec = rate;
            best.jobs_launched = finder.Stats().jobs_launched;
            best.tokens_analyzed = finder.Stats().tokens_analyzed;
        }
    }
    return best;
}

// ---------------------------------------------------------------------------
// Frontend issue-path throughput (the launch-view claim).
//
// Isolates what the application thread pays per launch at the API
// boundary, with the consumer discarded (the DiscardExecutor pattern
// above): the builder path reuses a caller-owned arena and carries
// the once-computed token on a view; the baseline reproduces the
// seed's per-launch cost — construct a TaskLaunch (one requirement
// vector), hash it at the consumer, and stage it through a pending
// buffer (one more vector copy), the way the pre-view Apophenia
// buffered every launch.

/** Consumes views without copying: the post-redesign contract. */
class DiscardFrontend final : public apo::api::Frontend {
  public:
    std::string_view Name() const override { return "discard"; }
    apo::rt::RegionId CreateRegion() override
    {
        return apo::rt::RegionId{++regions_};
    }
    void DestroyRegion(apo::rt::RegionId) override {}
    std::vector<apo::rt::RegionId> PartitionRegion(apo::rt::RegionId,
                                                   std::size_t) override
    {
        return {};
    }
    apo::rt::TokenHash Checksum() const { return checksum_; }

  protected:
    void DoExecuteTask(const apo::rt::TaskLaunchView& launch) override
    {
        checksum_ ^= launch.token;
    }
    bool DoBeginTrace(apo::rt::TraceId) override { return false; }
    bool DoEndTrace(apo::rt::TraceId) override { return false; }
    void DoFlush() override {}

  private:
    std::uint64_t regions_ = 0;
    apo::rt::TokenHash checksum_ = 0;
};

/** Stages every launch through a pending buffer — the seed's
 * per-launch requirement-vector copy. */
class BufferingDiscardFrontend final : public apo::api::Frontend {
  public:
    std::string_view Name() const override { return "discard-buffering"; }
    apo::rt::RegionId CreateRegion() override
    {
        return apo::rt::RegionId{++regions_};
    }
    void DestroyRegion(apo::rt::RegionId) override {}
    std::vector<apo::rt::RegionId> PartitionRegion(apo::rt::RegionId,
                                                   std::size_t) override
    {
        return {};
    }
    apo::rt::TokenHash Checksum() const { return checksum_; }

  protected:
    void DoExecuteTask(const apo::rt::TaskLaunchView& launch) override
    {
        pending_.push_back(launch.Materialize());
        checksum_ ^= launch.token;
        pending_.pop_front();
    }
    bool DoBeginTrace(apo::rt::TraceId) override { return false; }
    bool DoEndTrace(apo::rt::TraceId) override { return false; }
    void DoFlush() override {}

  private:
    std::uint64_t regions_ = 0;
    std::deque<apo::rt::TaskLaunch> pending_;
    apo::rt::TokenHash checksum_ = 0;
};

struct IssuePathResult {
    double launches_per_sec = 0.0;
    double allocs_per_launch = 0.0;
};

/** The measured stream: 8 task ids cycling over 3-requirement
 * stencil-shaped launches — the shape of the app skeletons' loops. */
template <typename IssueFn>
IssuePathResult MeasureIssuePath(std::size_t launches, int reps,
                                 IssueFn&& issue_one)
{
    IssuePathResult best;
    for (int rep = 0; rep < reps; ++rep) {
        const std::uint64_t allocs_before =
            apo::support::AllocationCount();
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < launches; ++i) {
            issue_one(i);
        }
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        const std::uint64_t allocs =
            apo::support::AllocationCount() - allocs_before;
        const double rate =
            static_cast<double>(launches) / elapsed.count();
        if (rate > best.launches_per_sec) {
            best.launches_per_sec = rate;
            best.allocs_per_launch = static_cast<double>(allocs) /
                                     static_cast<double>(launches);
        }
    }
    return best;
}

struct IssuePathRecord {
    IssuePathResult builder;
    IssuePathResult vector_copy;
    double improvement = 0.0;
};

IssuePathRecord RunIssuePathRecord()
{
    constexpr std::size_t kLaunches = 1u << 20;
    constexpr int kReps = 5;
    constexpr std::uint32_t kShards = 4;

    apo::rt::RegionRequirement reqs[3];
    auto requirement_of = [&](std::size_t i, std::uint32_t g) {
        reqs[0] = {apo::rt::RegionId{1 + (i % 5)},
                   g, apo::rt::Privilege::kReadOnly, 0};
        reqs[1] = {apo::rt::RegionId{1 + ((i + 1) % 5)},
                   g, apo::rt::Privilege::kReadOnly, 0};
        reqs[2] = {apo::rt::RegionId{1 + ((i + 2) % 5)},
                   g, apo::rt::Privilege::kWriteDiscard, 0};
    };

    IssuePathRecord record;
    {
        DiscardFrontend frontend;
        apo::api::LaunchBuilder builder;
        record.builder = MeasureIssuePath(
            kLaunches, kReps, [&](std::size_t i) {
                const std::uint32_t g =
                    static_cast<std::uint32_t>(i % kShards);
                requirement_of(i, g);
                builder.Start(static_cast<apo::rt::TaskId>(100 + i % 8),
                              g, 50.0);
                for (const auto& req : reqs) {
                    builder.Add(req);
                }
                builder.LaunchOn(frontend);
            });
        benchmark::DoNotOptimize(frontend.Checksum());
    }
    {
        BufferingDiscardFrontend frontend;
        record.vector_copy = MeasureIssuePath(
            kLaunches, kReps, [&](std::size_t i) {
                const std::uint32_t g =
                    static_cast<std::uint32_t>(i % kShards);
                requirement_of(i, g);
                apo::rt::TaskLaunch launch;  // the seed's per-launch
                launch.task =                // vector construction
                    static_cast<apo::rt::TaskId>(100 + i % 8);
                launch.shard = g;
                launch.execution_us = 50.0;
                launch.requirements.assign(reqs, reqs + 3);
                frontend.ExecuteTask(launch);  // hashes at the boundary
            });
        benchmark::DoNotOptimize(frontend.Checksum());
    }
    record.improvement =
        record.vector_copy.launches_per_sec > 0.0
            ? record.builder.launches_per_sec /
                  record.vector_copy.launches_per_sec
            : 0.0;

    std::printf("\n# frontend issue path (3-requirement launches, "
                "discard consumer, %zu launches)\n",
                kLaunches);
    std::printf("%-22s %14.0f launches/sec  (%.2f allocs/launch)\n",
                "launch-view builder", record.builder.launches_per_sec,
                record.builder.allocs_per_launch);
    std::printf("%-22s %14.0f launches/sec  (%.2f allocs/launch)\n",
                "vector-copy (seed)",
                record.vector_copy.launches_per_sec,
                record.vector_copy.allocs_per_launch);
    std::printf("%-22s %14.2fx\n", "improvement", record.improvement);
    return record;
}

// ---------------------------------------------------------------------------
// Runtime-log append throughput (the columnar-arena claim).
//
// Isolates what the runtime pays to *record* an already-analyzed
// launch. The baseline reproduces the seed's AoS log entry — an
// Operation struct owning a requirement vector and an edge vector,
// pushed onto a std::vector log (one or more allocations per launch).
// The arena path is rt::OperationLog in streaming-retire mode with a
// null consumer: blocks recycle, so the steady state allocates
// nothing and resident memory stays constant.

/** The seed's log entry, reproduced locally as the baseline. */
struct AosOperation {
    std::size_t index = 0;
    apo::rt::TaskLaunch launch;
    apo::rt::TokenHash token = 0;
    std::vector<apo::rt::Dependence> dependences;
    apo::rt::AnalysisMode mode = apo::rt::AnalysisMode::kAnalyzed;
    apo::rt::TraceId trace = 0;
    double analysis_cost_us = 0.0;
    bool replay_head = false;
};

struct LogAppendRecord {
    IssuePathResult arena;
    IssuePathResult aos;
    double improvement = 0.0;
};

LogAppendRecord RunLogAppendRecord()
{
    constexpr std::size_t kLaunches = 1u << 20;
    constexpr int kReps = 5;

    // A steady 3-requirement, 2-edge launch: the app skeletons' shape.
    apo::rt::TaskLaunch launch;
    launch.task = 42;
    launch.execution_us = 50.0;
    launch.requirements = {
        {apo::rt::RegionId{1}, 0, apo::rt::Privilege::kReadOnly, 0},
        {apo::rt::RegionId{2}, 0, apo::rt::Privilege::kReadOnly, 0},
        {apo::rt::RegionId{3}, 0, apo::rt::Privilege::kWriteDiscard, 0}};
    const apo::rt::TaskLaunchView view =
        apo::rt::TaskLaunchView::Of(launch);
    const apo::rt::Dependence edges[2] = {
        {5, 7, apo::rt::DependenceKind::kTrue},
        {6, 7, apo::rt::DependenceKind::kAnti}};

    LogAppendRecord record;
    {
        apo::rt::OperationLog log;
        log.EnableStreaming([](const apo::rt::OpView&) {});
        record.arena = MeasureIssuePath(
            kLaunches, kReps, [&](std::size_t) {
                log.Append(view, apo::rt::AnalysisMode::kAnalyzed, 0,
                           1.0, false, edges);
                log.SetRetireBound(log.size());
            });
        benchmark::DoNotOptimize(log.RetiredCount());
    }
    {
        // The seed's retained AoS log. Recycled wholesale every 64k
        // entries to keep the bench resident-bounded; clearing
        // destroys the per-entry vectors, so the per-launch
        // materialize-and-copy cost stays honest.
        std::vector<AosOperation> log;
        record.aos = MeasureIssuePath(
            kLaunches, kReps, [&](std::size_t) {
                if (log.size() == 65536) {
                    log.clear();
                }
                AosOperation op;
                op.index = log.size();
                view.MaterializeInto(op.launch);
                op.token = view.token;
                op.dependences.assign(edges, edges + 2);
                op.analysis_cost_us = 1.0;
                log.push_back(std::move(op));
            });
        benchmark::DoNotOptimize(log.size());
    }
    record.improvement =
        record.aos.launches_per_sec > 0.0
            ? record.arena.launches_per_sec / record.aos.launches_per_sec
            : 0.0;

    std::printf("\n# runtime-log append (3-requirement, 2-edge ops, "
                "%zu appends)\n",
                kLaunches);
    std::printf("%-22s %14.0f appends/sec   (%.2f allocs/launch)\n",
                "columnar arena log", record.arena.launches_per_sec,
                record.arena.allocs_per_launch);
    std::printf("%-22s %14.0f appends/sec   (%.2f allocs/launch)\n",
                "AoS vector log (seed)", record.aos.launches_per_sec,
                record.aos.allocs_per_launch);
    std::printf("%-22s %14.2fx\n", "improvement", record.improvement);
    return record;
}

// ---------------------------------------------------------------------------
// Stream-digest consume throughput (the incremental-agreement claim).
//
// The control-replication safety check used to be an all-pairs walk
// over retained logs; sim::StreamDigest replaces it with a rolling
// hash fed per issued call from the streaming-retire consumer. For
// that to ride the issue path of every node it must be O(1) amortized
// and allocation-free per operation — measured here over a log of the
// app skeletons' 3-requirement, 2-edge shape.

struct DigestRecord {
    IssuePathResult digest;  ///< consumes/sec, allocs/consume
    std::uint64_t checksum = 0;
};

DigestRecord RunDigestRecord()
{
    constexpr std::size_t kOps = 4096;
    constexpr std::size_t kConsumes = 1u << 20;
    constexpr int kReps = 5;

    apo::rt::OperationLog log;
    apo::rt::TaskLaunch launch;
    launch.execution_us = 50.0;
    launch.requirements = {
        {apo::rt::RegionId{1}, 0, apo::rt::Privilege::kReadOnly, 0},
        {apo::rt::RegionId{2}, 0, apo::rt::Privilege::kReadOnly, 0},
        {apo::rt::RegionId{3}, 0, apo::rt::Privilege::kWriteDiscard, 0}};
    for (std::size_t i = 0; i < kOps; ++i) {
        launch.task = static_cast<apo::rt::TaskId>(100 + i % 8);
        const apo::rt::Dependence edges[2] = {
            {i, i + 2, apo::rt::DependenceKind::kTrue},
            {i + 1, i + 2, apo::rt::DependenceKind::kAnti}};
        log.Append(apo::rt::TaskLaunchView::Of(launch),
                   apo::rt::AnalysisMode::kAnalyzed, 0, 1.0, false,
                   edges);
    }

    DigestRecord record;
    apo::sim::StreamDigest digest;
    record.digest = MeasureIssuePath(
        kConsumes, kReps,
        [&](std::size_t i) { digest.Consume(log[i % kOps]); });
    record.checksum = digest.Value();
    benchmark::DoNotOptimize(record.checksum);

    std::printf("\n# stream digest (3-requirement, 2-edge ops, %zu "
                "consumes)\n",
                kConsumes);
    std::printf("%-22s %14.0f consumes/sec  (%.2f allocs/consume)\n",
                "incremental digest", record.digest.launches_per_sec,
                record.digest.allocs_per_launch);
    return record;
}

// ---------------------------------------------------------------------------
// Steady-state mining throughput (the incremental-engine claim).
//
// Steady-state iteration loops hand the finder window after window of
// byte-identical content whenever the stream's period divides the
// analysis stride. The incremental engine (core/steady_miner.h) must
// serve those windows from its rolling ring — one fingerprint pass
// plus one verify compare, no suffix-array work, no allocation — and
// must produce candidate sets byte-identical to from-scratch mining.
// Measured end to end through TraceFinder with an inline executor, so
// the tokens/sec figures include everything the finder pays per
// window: history append, job launch, mining, ingestion.

struct SteadyMiningRun {
    double tokens_per_sec = 0.0;
    double fast_path_hit_rate = 0.0;
    std::uint64_t windows = 0;
    std::uint64_t digest = 0;  ///< fold of every job's candidate set
};

/** One full finder run over a pure period-64 stream (64 divides the
 * 4096-token batched stride, so every window is identical). */
SteadyMiningRun MeasureSteadyMining(bool incremental, std::size_t tokens,
                                    int reps)
{
    strings::Sequence stream(tokens);
    for (std::size_t i = 0; i < tokens; ++i) {
        stream[i] = i % 64;
    }

    SteadyMiningRun best;
    for (int rep = 0; rep < reps; ++rep) {
        core::ApopheniaConfig config;
        config.min_trace_length = 8;
        config.batchsize = 4096;
        config.multi_scale_factor = 64;
        config.identifier_algorithm = core::IdentifierAlgorithm::kBatched;
        config.incremental_mining = incremental;
        support::InlineExecutor executor;
        core::TraceFinder finder(config, executor);

        std::uint64_t digest = 1469598103934665603ull;
        const auto mix = [&digest](std::uint64_t v) {
            digest = (digest ^ v) * 1099511628211ull;
        };

        const auto start = std::chrono::steady_clock::now();
        std::uint64_t now = 0;
        for (const auto token : stream) {
            finder.Observe(token, ++now);
        }
        while (finder.PendingJobCount() > 0) {
            const core::AnalysisJob& job = finder.WaitOldestJob();
            for (const core::CandidateTrace& trace : job.Results()) {
                mix(trace.tokens.size());
                for (const auto token : trace.tokens) {
                    mix(token);
                }
                mix(static_cast<std::uint64_t>(trace.occurrences * 1024.0));
            }
            finder.ReleaseOldestJob();
        }
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;

        const core::FinderStats& stats = finder.Stats();
        const double rate = static_cast<double>(tokens) / elapsed.count();
        if (rate > best.tokens_per_sec) {
            best.tokens_per_sec = rate;
            best.windows = stats.jobs_launched;
            best.fast_path_hit_rate =
                stats.jobs_launched > 0
                    ? static_cast<double>(stats.mining_fast_path_hits) /
                          static_cast<double>(stats.jobs_launched)
                    : 0.0;
            best.digest = digest;
        }
    }
    return best;
}

/** Allocations per fast-path hit on a hot ring: the contract is zero. */
double MeasureProbeAllocs()
{
    core::ApopheniaConfig config;
    config.min_trace_length = 8;
    config.batchsize = 4096;
    config.multi_scale_factor = 64;
    core::SteadyStateMiner miner(config);
    std::vector<rt::TokenHash> window(4096);
    for (std::size_t i = 0; i < window.size(); ++i) {
        window[i] = i % 64;
    }
    core::MiningPath path = core::MiningPath::kNone;
    miner.Mine(window, &path);  // seed the ring

    constexpr std::uint64_t kProbes = 10000;
    std::shared_ptr<const std::vector<core::CandidateTrace>> hit;
    const std::uint64_t before = apo::support::AllocationCount();
    for (std::uint64_t i = 0; i < kProbes; ++i) {
        hit = miner.Probe(std::span<const rt::TokenHash>(window));
    }
    const std::uint64_t allocs = apo::support::AllocationCount() - before;
    if (hit == nullptr) {
        std::fprintf(stderr,
                     "steady_state_mining: probe missed a hot ring\n");
        return -1.0;
    }
    return static_cast<double>(allocs) / static_cast<double>(kProbes);
}

struct SteadyMiningRecord {
    SteadyMiningRun incremental;
    SteadyMiningRun scratch;
    double speedup = 0.0;
    double allocs_per_window = 0.0;
    bool identical = false;
};

SteadyMiningRecord RunSteadyMiningRecord()
{
    constexpr std::size_t kTokens = 1u << 19;
    constexpr int kReps = 5;

    SteadyMiningRecord record;
    record.incremental =
        MeasureSteadyMining(/*incremental=*/true, kTokens, kReps);
    record.scratch =
        MeasureSteadyMining(/*incremental=*/false, kTokens, kReps);
    record.speedup =
        record.scratch.tokens_per_sec > 0.0
            ? record.incremental.tokens_per_sec /
                  record.scratch.tokens_per_sec
            : 0.0;
    record.allocs_per_window = MeasureProbeAllocs();
    record.identical =
        record.incremental.digest == record.scratch.digest &&
        record.incremental.windows == record.scratch.windows;

    std::printf("\n# steady-state mining (period-64 stream, batched "
                "4096-token windows, %zu tokens)\n",
                kTokens);
    std::printf("%-22s %14.0f tokens/sec    (fast-path hit rate %.3f)\n",
                "incremental engine",
                record.incremental.tokens_per_sec,
                record.incremental.fast_path_hit_rate);
    std::printf("%-22s %14.0f tokens/sec\n", "from scratch (seed)",
                record.scratch.tokens_per_sec);
    std::printf("%-22s %14.2fx\n", "speedup", record.speedup);
    std::printf("%-22s %14.3f allocs/window (hot probe)\n", "fast path",
                record.allocs_per_window);
    if (!record.identical) {
        std::fprintf(stderr,
                     "steady_state_mining: candidate sets DIFFER between "
                     "incremental and from-scratch runs "
                     "(windows %llu vs %llu, digest %llx vs %llx)\n",
                     static_cast<unsigned long long>(
                         record.incremental.windows),
                     static_cast<unsigned long long>(record.scratch.windows),
                     static_cast<unsigned long long>(
                         record.incremental.digest),
                     static_cast<unsigned long long>(record.scratch.digest));
    }
    return record;
}

int RunLaunchPathRecord(const std::string& json_path)
{
    constexpr std::size_t kTokens = 1u << 19;
    constexpr int kReps = 5;
    const LaunchPathResult snapshot =
        MeasureLaunchPath(/*copy_slices=*/false, kTokens, kReps);
    const LaunchPathResult copy =
        MeasureLaunchPath(/*copy_slices=*/true, kTokens, kReps);
    const double improvement =
        copy.tokens_per_sec > 0.0
            ? snapshot.tokens_per_sec / copy.tokens_per_sec
            : 0.0;

    std::printf("# finder launch path (mining-heavy: batchsize 4096, "
                "scale 32, %zu tokens)\n",
                kTokens);
    std::printf("%-22s %14.0f tokens/sec\n", "zero-copy snapshots",
                snapshot.tokens_per_sec);
    std::printf("%-22s %14.0f tokens/sec\n", "copy-at-launch (seed)",
                copy.tokens_per_sec);
    std::printf("%-22s %14.2fx\n", "improvement", improvement);
    std::printf("%-22s %14llu jobs, %llu tokens analyzed\n", "workload",
                static_cast<unsigned long long>(snapshot.jobs_launched),
                static_cast<unsigned long long>(snapshot.tokens_analyzed));

    const IssuePathRecord issue = RunIssuePathRecord();
    const LogAppendRecord oplog = RunLogAppendRecord();
    const DigestRecord stream_digest = RunDigestRecord();
    const SteadyMiningRecord steady = RunSteadyMiningRecord();

    // This bench rewrites its own records wholesale; carry other
    // writers' sections (fig_replication_scaling's merges) across.
    const std::string existing =
        apo::bench::ReadFileOrEmpty(json_path);
    std::string preserved_member;
    for (const char* key :
         {"replication_scaling", "cluster_parallel", "fig_multitenant"}) {
        const std::string preserved =
            apo::bench::ExtractJsonMember(existing, key);
        if (!preserved.empty()) {
            preserved_member +=
                ",\n  \"" + std::string(key) + "\": " + preserved;
        }
    }

    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(
        out,
        "{\n"
        "  \"bench\": \"micro_repeats/finder_launch_path\",\n"
        "  \"config\": {\"batchsize\": 4096, \"multi_scale_factor\": 32,"
        " \"min_trace_length\": 8, \"tokens\": %zu},\n"
        "  %s,\n"
        "  \"snapshot_tokens_per_sec\": %.0f,\n"
        "  \"copy_at_launch_tokens_per_sec\": %.0f,\n"
        "  \"improvement\": %.3f,\n"
        "  \"jobs_launched\": %llu,\n"
        "  \"tokens_analyzed\": %llu,\n"
        "  \"issue_path\": {\n"
        "    \"builder_launches_per_sec\": %.0f,\n"
        "    \"vector_copy_launches_per_sec\": %.0f,\n"
        "    \"improvement\": %.3f,\n"
        "    \"builder_allocs_per_launch\": %.3f,\n"
        "    \"vector_copy_allocs_per_launch\": %.3f\n"
        "  },\n"
        "  \"oplog_append\": {\n"
        "    \"arena_appends_per_sec\": %.0f,\n"
        "    \"aos_appends_per_sec\": %.0f,\n"
        "    \"improvement\": %.3f,\n"
        "    \"arena_allocs_per_launch\": %.3f,\n"
        "    \"aos_allocs_per_launch\": %.3f\n"
        "  },\n"
        "  \"stream_digest\": {\n"
        "    \"consumes_per_sec\": %.0f,\n"
        "    \"allocs_per_consume\": %.3f\n"
        "  },\n"
        "  \"steady_state_mining\": {\n"
        "    %s,\n"
        "    \"incremental_tokens_per_sec\": %.0f,\n"
        "    \"from_scratch_tokens_per_sec\": %.0f,\n"
        "    \"speedup\": %.3f,\n"
        "    \"fast_path_hit_rate\": %.3f,\n"
        "    \"allocs_per_window\": %.3f,\n"
        "    \"windows\": %llu,\n"
        "    \"candidate_sets_identical\": %s\n"
        "  }%s\n"
        "}\n",
        kTokens, apo::bench::ConcurrencyJson().c_str(),
        snapshot.tokens_per_sec, copy.tokens_per_sec, improvement,
        static_cast<unsigned long long>(snapshot.jobs_launched),
        static_cast<unsigned long long>(snapshot.tokens_analyzed),
        issue.builder.launches_per_sec,
        issue.vector_copy.launches_per_sec, issue.improvement,
        issue.builder.allocs_per_launch,
        issue.vector_copy.allocs_per_launch,
        oplog.arena.launches_per_sec, oplog.aos.launches_per_sec,
        oplog.improvement, oplog.arena.allocs_per_launch,
        oplog.aos.allocs_per_launch,
        stream_digest.digest.launches_per_sec,
        stream_digest.digest.allocs_per_launch,
        apo::bench::ConcurrencyJson().c_str(),
        steady.incremental.tokens_per_sec,
        steady.scratch.tokens_per_sec, steady.speedup,
        steady.incremental.fast_path_hit_rate, steady.allocs_per_window,
        static_cast<unsigned long long>(steady.incremental.windows),
        steady.identical ? "true" : "false", preserved_member.c_str());
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
    // The equality assert: the record is only acceptable when the
    // engine's candidate sets match from-scratch mining bit for bit
    // and the hot fast path allocates nothing.
    if (!steady.identical || steady.allocs_per_window != 0.0) {
        return 1;
    }
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string json_path = "BENCH_micro_repeats.json";
    bool run_google_benches = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
            for (int j = i; j + 1 < argc; ++j) {
                argv[j] = argv[j + 1];
            }
            --argc;
            argv[argc] = nullptr;
            --i;
        } else if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
            run_google_benches = true;
        }
    }
    benchmark::Initialize(&argc, argv);
    if (run_google_benches) {
        benchmark::RunSpecifiedBenchmarks();
    }
    return RunLaunchPathRecord(json_path);
}
