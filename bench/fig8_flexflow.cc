/**
 * @file
 * Figure 8: FlexFlow (CANDLE pilot1) strong scaling on the Eos model.
 *
 * Paper result: fixing the per-GPU batch while adding GPUs shrinks
 * tasks until untraced runs slow down; Apophenia with its standard
 * configuration (auto-5000: effectively unbounded trace length) is
 * hurt at scale by the cost of issuing very long replays, while a
 * maximum trace length of 200 (auto-200, similar to the manual
 * trace's length) reaches 0.97x of manual at 32 GPUs and 1.5x over
 * untraced.
 */
#include <cstdio>

#include "apps/flexflow.h"
#include "bench_util.h"

int
main()
{
    using namespace apo;
    using bench::RunOne;

    std::printf(
        "# Figure 8: FlexFlow strong scaling (Eos model, 8 GPUs/node)\n");
    std::printf("# speedup over the 1-GPU untraced baseline\n");
    std::printf("%-5s %10s %10s %10s %10s %13s %15s\n", "gpus", "untraced",
                "manual", "auto5000", "auto200", "a200/manual",
                "a200/untraced");

    const std::size_t iterations = 60;
    core::ApopheniaConfig auto5000 = bench::ArtifactConfig();
    core::ApopheniaConfig auto200 = bench::ArtifactConfig();
    auto200.max_trace_length = 200;

    // Baseline: one GPU, untraced.
    apps::FlexFlowOptions base_options;
    base_options.machine = bench::Eos(1);
    const double baseline =
        RunOne<apps::FlexFlowApplication>(
            base_options, sim::TracingMode::kUntraced, base_options.machine,
            iterations, auto5000)
            .iterations_per_second;

    double a200_at_32 = 0, manual_at_32 = 0, untraced_at_32 = 0;
    for (const std::size_t gpus : {1, 2, 4, 8, 16, 32}) {
        const apps::MachineConfig machine = bench::Eos(gpus);
        apps::FlexFlowOptions options;
        options.machine = machine;
        const auto untraced = RunOne<apps::FlexFlowApplication>(
            options, sim::TracingMode::kUntraced, machine, iterations,
            auto5000);
        const auto manual = RunOne<apps::FlexFlowApplication>(
            options, sim::TracingMode::kManual, machine, iterations,
            auto5000);
        const auto a5000 = RunOne<apps::FlexFlowApplication>(
            options, sim::TracingMode::kAuto, machine, iterations, auto5000);
        const auto a200 = RunOne<apps::FlexFlowApplication>(
            options, sim::TracingMode::kAuto, machine, iterations, auto200);
        const double su = untraced.iterations_per_second / baseline;
        const double sm = manual.iterations_per_second / baseline;
        const double s5000 = a5000.iterations_per_second / baseline;
        const double s200 = a200.iterations_per_second / baseline;
        std::printf("%-5zu %10.2f %10.2f %10.2f %10.2f %13.2f %15.2f\n",
                    gpus, su, sm, s5000, s200, s200 / sm, s200 / su);
        if (gpus == 32) {
            a200_at_32 = s200;
            manual_at_32 = sm;
            untraced_at_32 = su;
        }
    }
    std::printf("\n# paper at 32 GPUs: auto-200 ~0.97x of manual, 1.5x"
                " over untraced; auto-200 > auto-5000 at scale\n");
    std::printf("measured at 32 GPUs: auto-200/manual %.2fx,"
                " auto-200/untraced %.2fx\n",
                a200_at_32 / manual_at_32, a200_at_32 / untraced_at_32);
    return 0;
}
