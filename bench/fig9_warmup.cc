/**
 * @file
 * Figure 9 (table): warmup iterations before Apophenia reaches a
 * replaying steady state.
 *
 * Paper result: S3D 50, HTR 50, CFD 300, TorchSWE 300, FlexFlow 30.
 * The cuPyNumeric applications (CFD, TorchSWE) need many more warmup
 * iterations because dynamic region allocation makes the repeating
 * unit span several source-level iterations (section 2), so more
 * stream must be observed before high-coverage traces emerge. The
 * reproduction target is that ordering (cuPyNumeric apps ≫ statically
 * allocated apps ≳ FlexFlow), not the absolute counts, which depend
 * on machine size and loop lengths.
 */
#include <cstdio>

#include "apps/cfd.h"
#include "apps/flexflow.h"
#include "apps/htr.h"
#include "apps/s3d.h"
#include "apps/torchswe.h"
#include "bench_util.h"

namespace {

template <typename App, typename Options>
std::size_t Warmup(Options options, const apo::apps::MachineConfig& machine,
                   std::size_t iterations)
{
    using namespace apo;
    options.machine = machine;
    const auto result = bench::RunOne<App>(
        options, sim::TracingMode::kAuto, machine, iterations,
        bench::ArtifactConfig());
    return result.warmup_iterations;
}

}  // namespace

int
main()
{
    using namespace apo;
    std::printf("# Figure 9: iterations until a replaying steady state\n");
    std::printf("%-10s %8s %8s\n", "app", "paper", "measured");

    const auto perlmutter = bench::Perlmutter(16);
    const auto eos = bench::Eos(16);
    const std::size_t s3d = Warmup<apps::S3dApplication>(
        apps::S3dOptions{}, perlmutter, 200);
    const std::size_t htr = Warmup<apps::HtrApplication>(
        apps::HtrOptions{}, perlmutter, 200);
    const std::size_t cfd = Warmup<apps::CfdApplication>(
        apps::CfdOptions{}, eos, 400);
    const std::size_t swe = Warmup<apps::TorchSweApplication>(
        apps::TorchSweOptions{}, eos, 400);
    const std::size_t ff = Warmup<apps::FlexFlowApplication>(
        apps::FlexFlowOptions{}, eos, 200);

    std::printf("%-10s %8d %8zu\n", "S3D", 50, s3d);
    std::printf("%-10s %8d %8zu\n", "HTR", 50, htr);
    std::printf("%-10s %8d %8zu\n", "CFD", 300, cfd);
    std::printf("%-10s %8d %8zu\n", "TorchSWE", 300, swe);
    std::printf("%-10s %8d %8zu\n", "FlexFlow", 30, ff);
    std::printf("\n# reproduction target: cuPyNumeric apps (CFD/TorchSWE)"
                " require the most warmup;\n# statically-allocated apps"
                " settle quickly.\n");
    return 0;
}
