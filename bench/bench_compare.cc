/**
 * @file
 * Perf-record regression gate: compare two BENCH_*.json records and
 * fail CI when a tracked metric regresses.
 *
 * The repo commits its perf records (BENCH_micro_repeats.json) so
 * successive PRs keep a throughput trajectory; this tool turns that
 * trajectory into an enforced gate. It flattens both files into
 * dotted-path -> number maps with a tiny recursive-descent parser
 * (the records are machine-written JSON; no general-purpose library
 * needed) and compares every metric whose name declares a direction:
 *
 *  - higher-is-better: paths ending in `_per_sec`, `improvement`,
 *    `speedup`, or `hit_rate`;
 *  - lower-is-better: paths containing `allocs_per`.
 *
 * Anything else (config echoes, counters, checksums) is ignored. A
 * metric regresses when it moves more than `--threshold` (default
 * 10%) in the bad direction relative to the baseline; metrics present
 * in only one file are reported but never fail the gate (records
 * legitimately gain and lose sections across PRs).
 *
 * Usage:
 *   bench_compare --baseline=OLD.json --current=NEW.json
 *                 [--threshold=0.10] [--metric=SUBSTR]...
 *                 [--require=SUBSTR]...
 *
 *  --metric   restrict the comparison to paths containing any of the
 *             given substrings (default: all direction-typed paths);
 *  --require  fail (exit 2) unless the *current* record contains at
 *             least one path with the substring — the gate that keeps
 *             a bench from quietly dropping a record.
 *
 * Exit codes: 0 ok; 1 regression (waivable in ci.sh via
 * APO_ALLOW_BENCH_REGRESSION=1); 2 usage, parse failure, or a missing
 * --require record (never waivable).
 *
 * The implementation lives in bench_compare_impl.h so the unit tests
 * run the same logic this binary does.
 */
#include "bench_compare_impl.h"

int
main(int argc, char** argv)
{
    return apo::bench::BenchCompareMain(argc, argv);
}
