/**
 * @file
 * Perf-record regression gate: compare two BENCH_*.json records and
 * fail CI when a tracked metric regresses.
 *
 * The repo commits its perf records (BENCH_micro_repeats.json) so
 * successive PRs keep a throughput trajectory; this tool turns that
 * trajectory into an enforced gate. It flattens both files into
 * dotted-path -> number maps with a tiny recursive-descent parser
 * (the records are machine-written JSON; no general-purpose library
 * needed) and compares every metric whose name declares a direction:
 *
 *  - higher-is-better: paths ending in `_per_sec`, `improvement`,
 *    `speedup`, or `hit_rate`;
 *  - lower-is-better: paths containing `allocs_per`.
 *
 * Anything else (config echoes, counters, checksums) is ignored. A
 * metric regresses when it moves more than `--threshold` (default
 * 10%) in the bad direction relative to the baseline; metrics present
 * in only one file are reported but never fail the gate (records
 * legitimately gain and lose sections across PRs).
 *
 * Usage:
 *   bench_compare --baseline=OLD.json --current=NEW.json
 *                 [--threshold=0.10] [--metric=SUBSTR]...
 *                 [--require=SUBSTR]...
 *
 *  --metric   restrict the comparison to paths containing any of the
 *             given substrings (default: all direction-typed paths);
 *  --require  fail (exit 2) unless the *current* record contains at
 *             least one path with the substring — the gate that keeps
 *             a bench from quietly dropping a record.
 *
 * Exit codes: 0 ok; 1 regression (waivable in ci.sh via
 * APO_ALLOW_BENCH_REGRESSION=1); 2 usage, parse failure, or a missing
 * --require record (never waivable).
 */
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

/** Minimal JSON reader over the machine-written record files: collects
 * every numeric leaf under its dotted path. Throws std::runtime_error
 * on malformed input. */
class FlatJsonParser {
  public:
    explicit FlatJsonParser(const std::string& text) : text_(text) {}

    std::map<std::string, double> Parse()
    {
        values_.clear();
        at_ = 0;
        SkipSpace();
        ParseValue("");
        SkipSpace();
        if (at_ != text_.size()) {
            Fail("trailing content");
        }
        return values_;
    }

  private:
    [[noreturn]] void Fail(const char* what)
    {
        throw std::runtime_error(std::string("JSON parse error at byte ") +
                                 std::to_string(at_) + ": " + what);
    }

    void SkipSpace()
    {
        while (at_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[at_]))) {
            ++at_;
        }
    }

    char Peek()
    {
        if (at_ >= text_.size()) {
            Fail("unexpected end");
        }
        return text_[at_];
    }

    void Expect(char c)
    {
        if (Peek() != c) {
            Fail("unexpected character");
        }
        ++at_;
    }

    std::string ParseString()
    {
        Expect('"');
        std::string s;
        while (Peek() != '"') {
            char c = text_[at_++];
            if (c == '\\') {
                s.push_back(text_[at_++]);  // record files escape nothing
            } else {
                s.push_back(c);
            }
        }
        ++at_;  // closing quote
        return s;
    }

    void ParseValue(const std::string& path)
    {
        SkipSpace();
        const char c = Peek();
        if (c == '{') {
            ++at_;
            SkipSpace();
            if (Peek() == '}') {
                ++at_;
                return;
            }
            for (;;) {
                SkipSpace();
                const std::string key = ParseString();
                SkipSpace();
                Expect(':');
                ParseValue(path.empty() ? key : path + "." + key);
                SkipSpace();
                if (Peek() == ',') {
                    ++at_;
                    continue;
                }
                Expect('}');
                return;
            }
        }
        if (c == '[') {
            ++at_;
            SkipSpace();
            if (Peek() == ']') {
                ++at_;
                return;
            }
            for (std::size_t index = 0;; ++index) {
                ParseValue(path + "." + std::to_string(index));
                SkipSpace();
                if (Peek() == ',') {
                    ++at_;
                    continue;
                }
                Expect(']');
                return;
            }
        }
        if (c == '"') {
            ParseString();
            return;
        }
        if (std::strncmp(text_.c_str() + at_, "true", 4) == 0) {
            at_ += 4;
            return;
        }
        if (std::strncmp(text_.c_str() + at_, "false", 5) == 0) {
            at_ += 5;
            return;
        }
        if (std::strncmp(text_.c_str() + at_, "null", 4) == 0) {
            at_ += 4;
            return;
        }
        // Number.
        char* end = nullptr;
        const double value = std::strtod(text_.c_str() + at_, &end);
        if (end == text_.c_str() + at_) {
            Fail("expected a value");
        }
        at_ = static_cast<std::size_t>(end - text_.c_str());
        values_[path] = value;
    }

    const std::string& text_;
    std::size_t at_ = 0;
    std::map<std::string, double> values_;
};

bool EndsWith(const std::string& s, const char* suffix)
{
    const std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

enum class Direction { kHigherIsBetter, kLowerIsBetter, kUntracked };

Direction DirectionOf(const std::string& path)
{
    if (path.find("allocs_per") != std::string::npos) {
        return Direction::kLowerIsBetter;
    }
    if (EndsWith(path, "_per_sec") || EndsWith(path, "improvement") ||
        EndsWith(path, "speedup") || EndsWith(path, "hit_rate")) {
        return Direction::kHigherIsBetter;
    }
    return Direction::kUntracked;
}

bool MatchesAny(const std::string& path,
                const std::vector<std::string>& patterns)
{
    if (patterns.empty()) {
        return true;
    }
    for (const std::string& pattern : patterns) {
        if (path.find(pattern) != std::string::npos) {
            return true;
        }
    }
    return false;
}

/** True iff `current` regressed vs `baseline` beyond `threshold`. A
 * zero baseline (e.g. allocs_per_window == 0, the contract value)
 * regresses on any materially nonzero bad-direction move. */
bool Regressed(Direction direction, double baseline, double current,
               double threshold)
{
    if (direction == Direction::kHigherIsBetter) {
        if (baseline <= 0.0) {
            return false;  // no meaningful reference
        }
        return current < baseline * (1.0 - threshold);
    }
    if (baseline == 0.0) {
        return current > threshold;  // absolute gate off a hard zero
    }
    return current > baseline * (1.0 + threshold);
}

int Usage()
{
    std::fprintf(
        stderr,
        "usage: bench_compare --baseline=OLD.json --current=NEW.json\n"
        "                     [--threshold=0.10] [--metric=SUBSTR]...\n"
        "                     [--require=SUBSTR]...\n");
    return 2;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string baseline_path;
    std::string current_path;
    double threshold = 0.10;
    std::vector<std::string> metrics;
    std::vector<std::string> required;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--baseline=", 0) == 0) {
            baseline_path = arg.substr(11);
        } else if (arg.rfind("--current=", 0) == 0) {
            current_path = arg.substr(10);
        } else if (arg.rfind("--threshold=", 0) == 0) {
            threshold = std::atof(arg.c_str() + 12);
        } else if (arg.rfind("--metric=", 0) == 0) {
            metrics.push_back(arg.substr(9));
        } else if (arg.rfind("--require=", 0) == 0) {
            required.push_back(arg.substr(10));
        } else {
            return Usage();
        }
    }
    if (baseline_path.empty() || current_path.empty() || threshold <= 0.0) {
        return Usage();
    }

    std::map<std::string, double> baseline;
    std::map<std::string, double> current;
    try {
        const std::string baseline_text =
            apo::bench::ReadFileOrEmpty(baseline_path);
        const std::string current_text =
            apo::bench::ReadFileOrEmpty(current_path);
        if (baseline_text.empty()) {
            std::fprintf(stderr, "bench_compare: cannot read %s\n",
                         baseline_path.c_str());
            return 2;
        }
        if (current_text.empty()) {
            std::fprintf(stderr, "bench_compare: cannot read %s\n",
                         current_path.c_str());
            return 2;
        }
        baseline = FlatJsonParser(baseline_text).Parse();
        current = FlatJsonParser(current_text).Parse();
    } catch (const std::exception& error) {
        std::fprintf(stderr, "bench_compare: %s\n", error.what());
        return 2;
    }

    // Required records must exist in the *current* file: a bench that
    // stops emitting a record must fail CI, not silently pass.
    for (const std::string& record : required) {
        bool found = false;
        for (const auto& [path, value] : current) {
            (void)value;
            if (path.find(record) != std::string::npos) {
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(stderr,
                         "bench_compare: required record \"%s\" is "
                         "missing from %s\n",
                         record.c_str(), current_path.c_str());
            return 2;
        }
    }

    int regressions = 0;
    int compared = 0;
    for (const auto& [path, base_value] : baseline) {
        const Direction direction = DirectionOf(path);
        if (direction == Direction::kUntracked ||
            !MatchesAny(path, metrics)) {
            continue;
        }
        const auto it = current.find(path);
        if (it == current.end()) {
            std::printf("  [dropped]    %-52s %12.3f -> (absent)\n",
                        path.c_str(), base_value);
            continue;
        }
        ++compared;
        const double now = it->second;
        const bool bad =
            Regressed(direction, base_value, now, threshold);
        const double ratio =
            base_value != 0.0 ? now / base_value : 0.0;
        std::printf("  [%s] %-52s %12.3f -> %12.3f  (%.2fx, %s)\n",
                    bad ? "REGRESSED" : "ok       ", path.c_str(),
                    base_value, now, ratio,
                    direction == Direction::kHigherIsBetter
                        ? "higher is better"
                        : "lower is better");
        if (bad) {
            ++regressions;
        }
    }
    std::printf("bench_compare: %d metric(s) compared, %d regression(s) "
                "(threshold %.0f%%)\n",
                compared, regressions, threshold * 100.0);
    return regressions > 0 ? 1 : 0;
}
