/**
 * @file
 * Fault-tolerance cost sweep: virtual-time makespan overhead of the
 * fault:: subsystem as a function of checkpoint interval × failure
 * count, on a 4-node replicated s3d run.
 *
 * For each cell the sweep reports the cluster's virtual-time makespan
 * (the slowest node's clock, which the checkpoint-pause and
 * recovery-stall cost model charges into), the overhead over the
 * no-checkpoint failure-free baseline, the checkpoint image size, and
 * the decision-tail replay volume. Every cell is digest-checked
 * against the baseline: churn and checkpointing must never perturb
 * the issued streams — the makespan is the *only* thing they may
 * move. The classic trade shows up directly: sparse checkpoints are
 * nearly free but make each recovery replay a long tail; dense
 * checkpoints pay steady pause time and shrink the tail.
 *
 * The results merge into BENCH_micro_repeats.json under the
 * "fig_recovery" key (run micro_repeats first; other records are
 * preserved), and ci.sh gates on the record's presence via
 * bench_compare --require=fig_recovery.
 *
 * Usage:
 *   fig_recovery                    # table + JSON merge
 *   fig_recovery --json=PATH        # merge target
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "apps/s3d.h"
#include "bench_util.h"
#include "sim/cluster.h"

namespace {

using namespace apo;

constexpr std::size_t kNodes = 4;
constexpr std::size_t kIterations = 40;

sim::ClusterOptions BaseOptions()
{
    sim::ClusterOptions options;
    options.coordination.nodes = kNodes;
    options.coordination.seed = 7;
    options.coordination.mean_latency_tasks = 120.0;
    options.coordination.jitter = 0.6;
    options.config.min_trace_length = 10;
    options.config.batchsize = 1500;
    options.config.multi_scale_factor = 100;
    options.runtime_options.nodes = kNodes;
    return options;
}

struct CellResult {
    std::uint64_t interval = 0;  ///< checkpoint interval (0 = never)
    std::size_t failures = 0;
    double makespan_tasks = 0.0;  ///< slowest node's virtual clock
    double overhead_pct = 0.0;    ///< vs the (0 ckpt, 0 fail) baseline
    sim::FaultStats fault;
    bool digests_match_baseline = false;
};

std::vector<std::pair<std::uint64_t, std::uint64_t>> RunCluster(
    sim::Cluster& cluster, double* makespan)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    apps::S3dApplication app(apps::S3dOptions{.machine = machine});
    app.Setup(cluster);
    for (std::size_t iter = 0; iter < kIterations; ++iter) {
        app.Iteration(cluster, iter, /*manual_tracing=*/false);
    }
    cluster.Flush();
    *makespan = 0.0;
    for (const sim::NodeMetrics& node : cluster.PerNode()) {
        *makespan = std::max(*makespan, node.virtual_time_tasks);
    }
    std::vector<std::pair<std::uint64_t, std::uint64_t>> digests;
    for (std::size_t n = 0; n < cluster.Nodes(); ++n) {
        const sim::StreamDigest d = cluster.NodeDigest(n);
        digests.emplace_back(d.Value(), d.Count());
    }
    return digests;
}

/** Stagger `failures` crash/rejoin pairs across the stream: failure k
 * takes node k+1 down at (k+1)/4 of the stream for an eighth of it. */
sim::ClusterOptions::FaultPlan PlanOf(std::size_t failures,
                                      std::uint64_t total_tasks)
{
    sim::ClusterOptions::FaultPlan plan;
    for (std::size_t k = 0; k < failures; ++k) {
        plan.events.push_back(
            {.node = k + 1,
             .crash_at_task = (k + 1) * total_tasks / 4,
             .rejoin_at_task =
                 (k + 1) * total_tasks / 4 + total_tasks / 8});
    }
    return plan;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string json_path = "BENCH_micro_repeats.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        }
    }

    // Failure-free, checkpoint-free baseline: its makespan anchors
    // every overhead, its digests pin every cell's streams.
    double baseline_makespan = 0.0;
    sim::Cluster baseline(BaseOptions());
    const auto baseline_digests =
        RunCluster(baseline, &baseline_makespan);
    const std::uint64_t total_tasks =
        baseline.Stats().tasks_executed;

    const std::uint64_t intervals[] = {256, 1024, 4096};
    const std::size_t failure_counts[] = {0, 1, 2};

    std::printf("# fault-tolerance cost (s3d, %zu nodes, %zu "
                "iterations, %llu tasks)\n",
                kNodes, kIterations,
                static_cast<unsigned long long>(total_tasks));
    std::printf("%9s %8s %14s %9s %6s %9s %10s %10s\n", "interval",
                "failures", "makespan_tsks", "ovhd_pct", "ckpts",
                "ckpt_KiB", "tail_evts", "digest_ok");
    std::vector<CellResult> cells;
    bool all_match = true;
    for (const std::uint64_t interval : intervals) {
        for (const std::size_t failures : failure_counts) {
            sim::ClusterOptions options = BaseOptions();
            options.checkpoint_interval_tasks = interval;
            options.fault_plan = PlanOf(failures, total_tasks);
            sim::Cluster cluster(options);
            CellResult cell;
            cell.interval = interval;
            cell.failures = failures;
            cell.digests_match_baseline =
                RunCluster(cluster, &cell.makespan_tasks) ==
                baseline_digests;
            cell.overhead_pct = baseline_makespan > 0.0
                                    ? 100.0 *
                                          (cell.makespan_tasks -
                                           baseline_makespan) /
                                          baseline_makespan
                                    : 0.0;
            cell.fault = cluster.FaultRecovery();
            all_match = all_match && cell.digests_match_baseline;
            std::printf(
                "%9llu %8zu %14.1f %9.3f %6llu %9.1f %10llu %10s\n",
                static_cast<unsigned long long>(cell.interval),
                cell.failures, cell.makespan_tasks, cell.overhead_pct,
                static_cast<unsigned long long>(
                    cell.fault.checkpoints_taken),
                static_cast<double>(cell.fault.last_checkpoint_bytes) /
                    1024.0,
                static_cast<unsigned long long>(
                    cell.fault.tail_events_replayed),
                cell.digests_match_baseline ? "yes" : "NO");
            cells.push_back(cell);
        }
    }
    if (!all_match) {
        std::fprintf(stderr,
                     "fig_recovery: a churned run's digests diverged "
                     "from the baseline\n");
        return 1;
    }

    std::ostringstream json;
    json << "{\n"
         << "    \"bench\": \"fig_recovery\",\n"
         << "    \"app\": \"s3d\", \"nodes\": " << kNodes
         << ", \"iterations\": " << kIterations
         << ", \"total_tasks\": " << total_tasks << ",\n"
         << "    " << bench::ConcurrencyJson() << ",\n"
         << "    \"baseline_makespan_tasks\": " << baseline_makespan
         << ",\n"
         << "    \"rows\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellResult& cell = cells[i];
        char buffer[512];
        std::snprintf(
            buffer, sizeof buffer,
            "      {\"checkpoint_interval_tasks\": %llu, "
            "\"failures\": %zu, "
            "\"makespan_tasks\": %.1f, \"overhead_pct\": %.3f, "
            "\"checkpoints_taken\": %llu, "
            "\"checkpoint_bytes\": %llu, "
            "\"total_checkpoint_bytes\": %llu, "
            "\"tail_events_replayed\": %llu, "
            "\"checkpoint_pause_tasks\": %.2f, "
            "\"recovery_stall_tasks\": %.2f, "
            "\"digests_match_baseline\": %s}%s\n",
            static_cast<unsigned long long>(cell.interval),
            cell.failures, cell.makespan_tasks, cell.overhead_pct,
            static_cast<unsigned long long>(
                cell.fault.checkpoints_taken),
            static_cast<unsigned long long>(
                cell.fault.last_checkpoint_bytes),
            static_cast<unsigned long long>(
                cell.fault.total_checkpoint_bytes),
            static_cast<unsigned long long>(
                cell.fault.tail_events_replayed),
            cell.fault.checkpoint_pause_tasks,
            cell.fault.recovery_stall_tasks,
            cell.digests_match_baseline ? "true" : "false",
            i + 1 < cells.size() ? "," : "");
        json << buffer;
    }
    json << "    ]\n  }";

    return bench::MergeIntoJson(json_path, "fig_recovery", json.str());
}
