/**
 * @file
 * Overload sweep: offered load {0.5×, 0.9×, 1.1×, 2×} of the traced
 * issue capacity × overload policy {block, shed, degrade} through the
 * sustained open-loop driver (svc::LoadDriver, streaming-retire logs).
 *
 * What the grid shows, and what this bench asserts hard:
 *
 *  - Sustainable load (≤ 0.9×): the overload machinery is inert — all
 *    three policies issue bit-identical per-tenant streams (equal
 *    stream digests) with zero shed and zero degraded iterations.
 *  - Saturation (2×): kBlock falls off the latency cliff (its p99
 *    issue latency grows with the run length), kShed holds latency by
 *    dropping ~half the arrivals, and kDegrade holds p99 within 5× of
 *    its own 0.5×-load baseline with a bounded backlog and a nonzero
 *    degraded fraction — liveness bought with trace quality, not with
 *    dropped work.
 *
 * Per cell the record carries delivered throughput (tasks per virtual
 * tick), p50/p99 issue latency (virtual ticks), wall-clock p99 (µs),
 * shed/degraded fractions, peak backlog and the peak resident log
 * bytes (bounded by the streaming-retire mode). The section merges
 * into BENCH_micro_repeats.json under "fig_overload"; ci.sh gates on
 * its presence via bench_compare --require.
 *
 * Usage:
 *   fig_overload                 # table + JSON merge
 *   fig_overload --json=PATH     # merge target
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "svc/load_driver.h"

namespace {

using namespace apo;

constexpr std::size_t kTenants = 4;
constexpr std::size_t kKernelTasks = 40;
constexpr std::uint64_t kTaskBudget = 48000;
constexpr std::size_t kQueueBound = 6;
constexpr std::size_t kResume = 1;
constexpr double kDegradedTaskCost = 0.25;

struct Cell {
    double load = 0.0;
    std::string policy;
    svc::DriverResult result;
    double wall_ms = 0.0;
};

double MillisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

svc::OverloadPolicy PolicyOf(const std::string& name)
{
    if (name == "shed") {
        return svc::OverloadPolicy::kShed;
    }
    if (name == "degrade") {
        return svc::OverloadPolicy::kDegrade;
    }
    return svc::OverloadPolicy::kBlock;
}

Cell RunCell(double load, const std::string& policy)
{
    apps::MachineConfig machine;
    machine.nodes = 1;
    machine.gpus_per_node = 4;

    svc::LoadDriverOptions options;
    options.service.machine = machine;
    options.service.config.min_trace_length = 10;
    options.service.config.batchsize = 960;  // kernel-aligned windows
    options.service.config.multi_scale_factor = 40;
    // The sustained-driver configuration: streaming-retire logs, so
    // resident memory plateaus however long the run.
    options.service.log_mode = sim::LogMode::kStreaming;
    options.service.degraded_task_cost = kDegradedTaskCost;
    options.tenants = kTenants;
    options.offered_load = load;
    options.task_budget = kTaskBudget;
    options.policy = PolicyOf(policy);
    options.max_queue_iterations = kQueueBound;
    options.degrade_resume_iterations = kResume;
    options.kernel_tasks = kKernelTasks;

    Cell cell;
    cell.load = load;
    cell.policy = policy;
    const auto start = std::chrono::steady_clock::now();
    svc::LoadDriver driver(std::move(options));
    cell.result = driver.Run();
    cell.wall_ms = MillisSince(start);
    return cell;
}

std::string SectionOf(const std::vector<Cell>& cells)
{
    std::ostringstream json;
    json << "{\n"
         << "    \"bench\": \"fig_overload\",\n"
         << "    \"tenants\": " << kTenants << ", \"kernel_tasks\": "
         << kKernelTasks << ", \"task_budget\": " << kTaskBudget
         << ",\n"
         << "    \"queue_bound\": " << kQueueBound
         << ", \"degraded_task_cost\": " << kDegradedTaskCost << ",\n"
         << "    " << apo::bench::ConcurrencyJson() << ",\n"
         << "    \"rows\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell& cell = cells[i];
        char buffer[640];
        std::snprintf(
            buffer, sizeof buffer,
            "      {\"load\": %.2f, \"policy\": \"%s\", "
            "\"throughput_tasks_per_tick\": %.4f, "
            "\"p50_issue_latency\": %.1f, \"p99_issue_latency\": %.1f, "
            "\"p99_issue_wall_us\": %.1f, "
            "\"shed_fraction\": %.4f, \"degraded_fraction\": %.4f, "
            "\"max_backlog\": %llu, \"peak_resident_bytes\": %zu, "
            "\"virtual_time\": %llu, \"wall_ms\": %.3f}%s\n",
            cell.load, cell.policy.c_str(),
            cell.result.throughput_tasks_per_tick,
            cell.result.worst_p50_issue_latency,
            cell.result.worst_p99_issue_latency,
            cell.result.worst_p99_issue_wall_us,
            cell.result.shed_fraction, cell.result.degraded_fraction,
            static_cast<unsigned long long>(cell.result.max_backlog),
            cell.result.peak_resident_bytes,
            static_cast<unsigned long long>(
                cell.result.service.virtual_time),
            cell.wall_ms, i + 1 < cells.size() ? "," : "");
        json << buffer;
    }
    json << "    ]\n  }";
    return json.str();
}

const Cell* FindCell(const std::vector<Cell>& cells, double load,
                     const std::string& policy)
{
    for (const Cell& cell : cells) {
        if (cell.load == load && cell.policy == policy) {
            return &cell;
        }
    }
    return nullptr;
}

/** The acceptance assertions described in the file comment. Returns
 * false (after printing why) on any violation. */
bool CheckAcceptance(const std::vector<Cell>& cells)
{
    // Sustainable load: the three policies are behaviour-identical.
    for (const double load : {0.5, 0.9}) {
        const Cell* block = FindCell(cells, load, "block");
        const Cell* shed = FindCell(cells, load, "shed");
        const Cell* degrade = FindCell(cells, load, "degrade");
        for (const Cell* cell : {block, shed, degrade}) {
            if (cell->result.shed_fraction != 0.0 ||
                cell->result.degraded_fraction != 0.0) {
                std::fprintf(stderr,
                             "fig_overload: %s at %.1fx shed/degraded "
                             "work at sustainable load\n",
                             cell->policy.c_str(), load);
                return false;
            }
        }
        if (block->result.tenant_digests != shed->result.tenant_digests ||
            block->result.tenant_digests !=
                degrade->result.tenant_digests) {
            std::fprintf(stderr,
                         "fig_overload: policies diverge at "
                         "sustainable %.1fx load (stream digests "
                         "differ)\n",
                         load);
            return false;
        }
    }
    // Saturation: shed sheds, degrade degrades with bounded backlog
    // and bounded latency, block falls off the cliff.
    const Cell* shed2 = FindCell(cells, 2.0, "shed");
    const Cell* degrade2 = FindCell(cells, 2.0, "degrade");
    const Cell* degrade_base = FindCell(cells, 0.5, "degrade");
    const Cell* block2 = FindCell(cells, 2.0, "block");
    if (shed2->result.shed_fraction <= 0.0) {
        std::fprintf(stderr,
                     "fig_overload: kShed at 2x shed nothing\n");
        return false;
    }
    if (degrade2->result.degraded_fraction <= 0.0) {
        std::fprintf(stderr,
                     "fig_overload: kDegrade at 2x degraded nothing\n");
        return false;
    }
    // Degrade admits everything; the discounted degraded issue rate
    // must still bound the backlog near the admission bound (slack:
    // the traced phases of each hysteresis cycle).
    const std::uint64_t backlog_bound = kQueueBound + 4 * kQueueBound;
    if (degrade2->result.max_backlog > backlog_bound) {
        std::fprintf(stderr,
                     "fig_overload: kDegrade backlog %llu exceeds "
                     "bound %llu at 2x load\n",
                     static_cast<unsigned long long>(
                         degrade2->result.max_backlog),
                     static_cast<unsigned long long>(backlog_bound));
        return false;
    }
    const double base_p99 =
        std::max(degrade_base->result.worst_p99_issue_latency, 1.0);
    if (degrade2->result.worst_p99_issue_latency > 5.0 * base_p99) {
        std::fprintf(stderr,
                     "fig_overload: kDegrade p99 %.1f at 2x exceeds "
                     "5x its 0.5x baseline %.1f\n",
                     degrade2->result.worst_p99_issue_latency,
                     base_p99);
        return false;
    }
    if (block2->result.worst_p99_issue_latency <=
        5.0 * degrade2->result.worst_p99_issue_latency) {
        std::fprintf(stderr,
                     "fig_overload: kBlock p99 %.1f at 2x shows no "
                     "cliff over kDegrade's %.1f\n",
                     block2->result.worst_p99_issue_latency,
                     degrade2->result.worst_p99_issue_latency);
        return false;
    }
    return true;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string json_path = "BENCH_micro_repeats.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        }
    }

    const double loads[] = {0.5, 0.9, 1.1, 2.0};
    const char* policies[] = {"block", "shed", "degrade"};

    std::printf("# overload sweep (%zu open-loop tenants, %llu-task "
                "budget, streaming logs)\n",
                kTenants,
                static_cast<unsigned long long>(kTaskBudget));
    std::printf("%5s %-8s %8s %8s %10s %7s %8s %8s %9s\n", "load",
                "policy", "thr/tick", "p50", "p99", "shed", "degraded",
                "backlog", "wall_ms");
    std::vector<Cell> cells;
    for (const double load : loads) {
        for (const char* policy : policies) {
            Cell cell = RunCell(load, policy);
            std::printf(
                "%5.2f %-8s %8.4f %8.1f %10.1f %7.4f %8.4f %8llu "
                "%9.1f\n",
                cell.load, cell.policy.c_str(),
                cell.result.throughput_tasks_per_tick,
                cell.result.worst_p50_issue_latency,
                cell.result.worst_p99_issue_latency,
                cell.result.shed_fraction,
                cell.result.degraded_fraction,
                static_cast<unsigned long long>(cell.result.max_backlog),
                cell.wall_ms);
            cells.push_back(std::move(cell));
        }
    }

    if (!CheckAcceptance(cells)) {
        return 1;
    }

    const int rc = apo::bench::MergeIntoJson(json_path, "fig_overload",
                                             SectionOf(cells));
    if (rc == 0) {
        std::printf("merged into %s\n", json_path.c_str());
    }
    return rc;
}
