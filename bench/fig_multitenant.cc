/**
 * @file
 * Multi-tenant service sweep: M ∈ {1, 2, 8, 32} concurrent tenants ×
 * three workload mixes through one svc::TraceService.
 *
 *  - disjoint:  every tenant runs a differently-seeded synthetic
 *               kernel — the isolation baseline; the shared mining
 *               cache cannot help and must not hurt.
 *  - identical: every tenant runs the *same* kernel under a different
 *               token namespace — the sharing best case; each distinct
 *               window is mined once service-wide and the other M-1
 *               tenants adopt it (cross-tenant sharing → (M-1)/M).
 *  - mixed:     half the tenants share one kernel, half are unique,
 *               and every odd tenant is open-loop (arrivals on its own
 *               virtual-time schedule), so the p99 issue latency
 *               reflects real queueing behind the fair scheduler.
 *
 * Per cell the record carries the tenant-mean trace-cache hit rate,
 * the service-wide cross-tenant sharing ratio, the mining-cache
 * adoption rate, and p50/p99 issue latency (virtual ticks) of the
 * worst tenant. The section merges into BENCH_micro_repeats.json
 * under "fig_multitenant" (ci.sh gates on its presence via
 * bench_compare --require); the *_hit_rate metrics are deterministic
 * — inline mining, fixed seeds and policy — so the regression gate
 * compares them exactly.
 *
 * Usage:
 *   fig_multitenant                 # table + JSON merge
 *   fig_multitenant --json=PATH     # merge target
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "svc/service.h"
#include "svc/workload.h"

namespace {

using namespace apo;

struct Cell {
    std::size_t tenants = 0;
    std::string mix;
    svc::ServiceResult result;
    double wall_ms = 0.0;
    double mean_trace_hit_rate = 0.0;
    double adoption_hit_rate = 0.0;  ///< cache hits / post-first probes
    double worst_p50 = 0.0;
    double worst_p99 = 0.0;
};

double MillisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

constexpr std::size_t kIterations = 24;
constexpr std::uint64_t kSharedSeed = 7;

svc::SyntheticOptions WorkloadOf(const apps::MachineConfig& machine,
                                 std::uint64_t seed)
{
    svc::SyntheticOptions options;
    options.machine = machine;
    options.seed = seed;
    options.kernel_tasks = 40;
    options.arrays = 4;
    options.noise_interval = 16;
    return options;
}

Cell RunCell(std::size_t tenants, const std::string& mix)
{
    apps::MachineConfig machine;
    machine.nodes = 1;
    machine.gpus_per_node = 4;

    svc::ServiceOptions service_options;
    service_options.machine = machine;
    service_options.config.min_trace_length = 10;
    service_options.config.batchsize = 960;  // kernel-aligned windows
    service_options.config.multi_scale_factor = 40;
    svc::DeficitWeightedFairPolicy policy(64);
    service_options.policy = &policy;

    svc::TraceService service(service_options);
    std::vector<std::unique_ptr<svc::SyntheticWorkload>> apps;
    for (std::size_t t = 0; t < tenants; ++t) {
        std::uint64_t seed = kSharedSeed;
        if (mix == "disjoint" || (mix == "mixed" && t % 2 == 1)) {
            seed = 100 + t;
        }
        apps.push_back(std::make_unique<svc::SyntheticWorkload>(
            WorkloadOf(machine, seed)));
        svc::TenantOptions tenant;
        tenant.name = mix + "-" + std::to_string(t);
        tenant.app = apps.back().get();
        tenant.iterations = kIterations;
        tenant.weight = 1.0 + static_cast<double>(t % 3);
        if (mix == "mixed" && t % 2 == 1) {
            // Open loop: arrivals every ~half an average iteration, so
            // the queue builds and the latency percentiles move.
            tenant.arrival_gap = 20;
        }
        service.AddTenant(tenant);
    }

    Cell cell;
    cell.tenants = tenants;
    cell.mix = mix;
    const auto start = std::chrono::steady_clock::now();
    cell.result = service.Run();
    cell.wall_ms = MillisSince(start);

    for (const svc::TenantStats& tenant : cell.result.tenants) {
        cell.mean_trace_hit_rate += tenant.trace_cache_hit_rate;
        cell.worst_p50 = std::max(cell.worst_p50,
                                  tenant.p50_issue_latency);
        cell.worst_p99 = std::max(cell.worst_p99,
                                  tenant.p99_issue_latency);
    }
    cell.mean_trace_hit_rate /= static_cast<double>(tenants);
    // Of the probes left after each distinct window's one unavoidable
    // first miss, the fraction adopted from the cache (the
    // cluster_parallel record's convention).
    const core::MiningCache::Stats& cache = cell.result.mining_cache;
    const double repeat_probes = static_cast<double>(
        cache.hits + (cache.misses - cache.windows));
    cell.adoption_hit_rate =
        repeat_probes > 0.0
            ? static_cast<double>(cache.hits) / repeat_probes
            : 0.0;
    return cell;
}

std::string SectionOf(const std::vector<Cell>& cells)
{
    std::ostringstream json;
    json << "{\n"
         << "    \"bench\": \"fig_multitenant\",\n"
         << "    \"app\": \"synthetic\", \"iterations\": "
         << kIterations << ", \"policy\": \""
         << cells.front().result.policy << "\",\n"
         << "    " << apo::bench::ConcurrencyJson() << ",\n"
         << "    \"rows\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell& cell = cells[i];
        char buffer[640];
        std::snprintf(
            buffer, sizeof buffer,
            "      {\"tenants\": %zu, \"mix\": \"%s\", "
            "\"mean_trace_cache_hit_rate\": %.4f, "
            "\"cross_tenant_sharing\": %.4f, "
            "\"adoption_hit_rate\": %.4f, "
            "\"cache_hits\": %llu, \"cache_misses\": %llu, "
            "\"cache_windows\": %zu, "
            "\"cross_namespace_hits\": %llu, "
            "\"p50_issue_latency\": %.1f, \"p99_issue_latency\": %.1f, "
            "\"virtual_time\": %llu, \"wall_ms\": %.3f}%s\n",
            cell.tenants, cell.mix.c_str(), cell.mean_trace_hit_rate,
            cell.result.cross_tenant_sharing, cell.adoption_hit_rate,
            static_cast<unsigned long long>(cell.result.mining_cache.hits),
            static_cast<unsigned long long>(
                cell.result.mining_cache.misses),
            cell.result.mining_cache.windows,
            static_cast<unsigned long long>(
                cell.result.mining_cache.cross_namespace_hits),
            cell.worst_p50, cell.worst_p99,
            static_cast<unsigned long long>(cell.result.virtual_time),
            cell.wall_ms, i + 1 < cells.size() ? "," : "");
        json << buffer;
    }
    json << "    ]\n  }";
    return json.str();
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string json_path = "BENCH_micro_repeats.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        }
    }

    const std::size_t tenant_counts[] = {1, 2, 8, 32};
    const char* mixes[] = {"disjoint", "identical", "mixed"};

    std::printf("# multi-tenant service (synthetic tenants, %zu "
                "iterations, deficit-weighted fair)\n",
                kIterations);
    std::printf("%3s %-10s %10s %9s %9s %8s %8s %9s\n", "M", "mix",
                "trace_hit", "sharing", "adoption", "p50", "p99",
                "wall_ms");
    std::vector<Cell> cells;
    for (const std::size_t tenants : tenant_counts) {
        for (const char* mix : mixes) {
            Cell cell = RunCell(tenants, mix);
            std::printf("%3zu %-10s %10.4f %9.4f %9.4f %8.1f %8.1f "
                        "%9.1f\n",
                        cell.tenants, cell.mix.c_str(),
                        cell.mean_trace_hit_rate,
                        cell.result.cross_tenant_sharing,
                        cell.adoption_hit_rate, cell.worst_p50,
                        cell.worst_p99, cell.wall_ms);
            // The acceptance invariant: with M identical tenants every
            // distinct window is mined once service-wide and the other
            // M-1 tenants adopt it.
            if (cell.mix == "identical" && cell.tenants > 1) {
                const core::MiningCache::Stats& cache =
                    cell.result.mining_cache;
                const double probes = static_cast<double>(
                    cache.hits + cache.misses);
                const double want =
                    static_cast<double>(cell.tenants - 1) /
                    static_cast<double>(cell.tenants);
                if (probes == 0.0 ||
                    cache.misses != cache.windows ||
                    cell.result.cross_tenant_sharing < want - 1e-9) {
                    std::fprintf(
                        stderr,
                        "fig_multitenant: identical M=%zu cross-tenant "
                        "sharing %.4f < (M-1)/M = %.4f\n",
                        cell.tenants, cell.result.cross_tenant_sharing,
                        want);
                    return 1;
                }
            }
            cells.push_back(std::move(cell));
        }
    }

    const int rc =
        apo::bench::MergeIntoJson(json_path, "fig_multitenant",
                                  SectionOf(cells));
    if (rc == 0) {
        std::printf("merged into %s\n", json_path.c_str());
    }
    return rc;
}
