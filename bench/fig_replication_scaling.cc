/**
 * @file
 * Replication scaling sweep: node counts {2, 8, 64} under every skew
 * model, streaming logs throughout — the experiment the paper's
 * section 5.1 stops short of. For each (nodes, skew) cell the sweep
 * reports simulated steady-state throughput, the agreed-slack
 * trajectory endpoints, agreement misses, the worst per-node stall
 * and the worst node's resident-log high water (bounded by the
 * streaming-retire mode no matter the node count).
 *
 * The results merge into BENCH_micro_repeats.json (next to the
 * finder/issue-path/oplog records) under the "replication_scaling"
 * key, so successive PRs keep a scaling trajectory. Run micro_repeats
 * first; this bench preserves whatever else is in the file.
 *
 * Usage:
 *   fig_replication_scaling                    # table + JSON merge
 *   fig_replication_scaling --json=PATH        # merge target
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/s3d.h"
#include "bench_util.h"
#include "sim/cluster.h"
#include "sim/harness.h"

namespace {

using namespace apo;

struct Row {
    std::size_t nodes = 0;
    sim::SkewKind skew = sim::SkewKind::kNone;
    sim::ExperimentResult result;
    double max_stall_tasks = 0.0;
};

sim::SkewModel SkewOf(sim::SkewKind kind)
{
    sim::SkewModel skew;
    skew.kind = kind;
    skew.jitter_amplitude = 0.3;
    skew.straggler_node = 0;
    skew.straggler_factor = 4.0;
    skew.burst_period_tasks = 1024;
    skew.burst_duration_tasks = 256;
    skew.burst_factor = 8.0;
    skew.burst_stagger_tasks = 128;
    return skew;
}

Row RunCell(std::size_t nodes, sim::SkewKind kind)
{
    sim::ExperimentOptions options;
    options.mode = sim::TracingMode::kAuto;
    options.iterations = 40;
    options.machine.nodes = 2;
    options.machine.gpus_per_node = 2;
    options.auto_config.min_trace_length = 10;
    options.auto_config.batchsize = 1500;
    options.auto_config.multi_scale_factor = 100;
    options.replicas = nodes;
    options.replication.seed = 7;
    options.replication.mean_latency_tasks = 120.0;
    options.replication.jitter = 0.6;
    options.skew = SkewOf(kind);
    options.log_mode = sim::LogMode::kStreaming;

    apps::S3dApplication app(
        apps::S3dOptions{.machine = options.machine});
    Row row;
    row.nodes = nodes;
    row.skew = kind;
    row.result = sim::RunExperiment(app, options);
    for (const sim::NodeMetrics& node : row.result.node_metrics) {
        row.max_stall_tasks =
            std::max(row.max_stall_tasks, node.max_stall_tasks);
    }
    return row;
}

int MergeIntoJson(const std::string& path, const std::string& section)
{
    std::string content = bench::ReadFileOrEmpty(path);
    if (content.empty()) {
        content = "{\n}\n";
    }
    bench::RemoveJsonMember(content, "replication_scaling");
    std::size_t close = content.rfind('}');
    if (close == std::string::npos) {
        std::fprintf(stderr, "%s is not a JSON object\n", path.c_str());
        return 1;
    }
    std::size_t tail = close;
    while (tail > 0 && (content[tail - 1] == ' ' ||
                        content[tail - 1] == '\n' ||
                        content[tail - 1] == '\t' ||
                        content[tail - 1] == ',')) {
        --tail;
    }
    const bool has_members = content.find('"') < tail;
    content.erase(tail);
    content += has_members ? ",\n" : "\n";
    content += "  \"replication_scaling\": " + section + "\n}\n";

    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    out << content;
    return 0;
}

std::string SectionOf(const std::vector<Row>& rows)
{
    std::ostringstream json;
    json << "{\n"
         << "    \"bench\": \"fig_replication_scaling\",\n"
         << "    \"app\": \"s3d\", \"iterations\": 40, "
         << "\"log_mode\": \"streaming\",\n"
         << "    \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& row = rows[i];
        char buffer[512];
        std::snprintf(
            buffer, sizeof buffer,
            "      {\"nodes\": %zu, \"skew\": \"%.*s\", "
            "\"iterations_per_second\": %.2f, "
            "\"final_slack\": %llu, \"peak_slack\": %llu, "
            "\"late_jobs\": %llu, \"jobs_coordinated\": %llu, "
            "\"max_stall_tasks\": %.0f, "
            "\"worst_node_log_peak_bytes\": %zu, "
            "\"streams_identical\": %s}%s\n",
            row.nodes,
            static_cast<int>(sim::SkewName(row.skew).size()),
            sim::SkewName(row.skew).data(),
            row.result.iterations_per_second,
            static_cast<unsigned long long>(
                row.result.coordination.final_slack),
            static_cast<unsigned long long>(
                row.result.coordination.peak_slack),
            static_cast<unsigned long long>(
                row.result.coordination.late_jobs),
            static_cast<unsigned long long>(
                row.result.coordination.jobs_coordinated),
            row.max_stall_tasks, row.result.log_peak_resident_bytes,
            row.result.streams_identical ? "true" : "false",
            i + 1 < rows.size() ? "," : "");
        json << buffer;
    }
    json << "    ]\n  }";
    return json.str();
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string json_path = "BENCH_micro_repeats.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        }
    }

    const std::size_t node_counts[] = {2, 8, 64};
    const sim::SkewKind kinds[] = {
        sim::SkewKind::kNone, sim::SkewKind::kJitter,
        sim::SkewKind::kStraggler, sim::SkewKind::kInterference};

    std::printf("# replication scaling (s3d, streaming logs, "
                "40 iterations)\n");
    std::printf("%6s %-13s %12s %11s %10s %10s %12s %10s\n", "nodes",
                "skew", "iters/sec", "final_slck", "late_jobs",
                "max_stall", "log_peak_B", "identical");
    std::vector<Row> rows;
    for (const std::size_t nodes : node_counts) {
        for (const sim::SkewKind kind : kinds) {
            Row row = RunCell(nodes, kind);
            std::printf(
                "%6zu %-13.*s %12.2f %11llu %10llu %10.0f %12zu "
                "%10s\n",
                row.nodes,
                static_cast<int>(sim::SkewName(kind).size()),
                sim::SkewName(kind).data(),
                row.result.iterations_per_second,
                static_cast<unsigned long long>(
                    row.result.coordination.final_slack),
                static_cast<unsigned long long>(
                    row.result.coordination.late_jobs),
                row.max_stall_tasks,
                row.result.log_peak_resident_bytes,
                row.result.streams_identical ? "yes" : "NO");
            if (!row.result.streams_identical) {
                std::fprintf(stderr,
                             "stream divergence at %zu nodes (%s)\n",
                             row.nodes,
                             std::string(sim::SkewName(kind)).c_str());
                return 1;
            }
            rows.push_back(std::move(row));
        }
    }

    const int rc = MergeIntoJson(json_path, SectionOf(rows));
    if (rc == 0) {
        std::printf("merged into %s\n", json_path.c_str());
    }
    return rc;
}
