/**
 * @file
 * Replication scaling sweep: node counts {2, 8, 64} under every skew
 * model, streaming logs throughout — the experiment the paper's
 * section 5.1 stops short of. For each (nodes, skew) cell the sweep
 * reports simulated steady-state throughput, wall-clock, the
 * agreed-slack trajectory endpoints, agreement misses, the worst
 * per-node stall and the worst node's resident-log high water
 * (bounded by the streaming-retire mode no matter the node count).
 *
 * A second sweep ("cluster_parallel") measures the execution engine
 * itself at 8 no-skew nodes: the serial PR-4 configuration (jobs = 1,
 * no shared mining cache) against the parallel engine with the
 * content-addressed mining cache at jobs ∈ {1, 4, hardware}. Every
 * configuration is verified to produce identical results — the rows
 * differ in wall-clock and cache hit rate only.
 *
 * The results merge into BENCH_micro_repeats.json (next to the
 * finder/issue-path/oplog records) under the "replication_scaling"
 * and "cluster_parallel" keys, so successive PRs keep a scaling
 * trajectory. Run micro_repeats first; this bench preserves whatever
 * else is in the file.
 *
 * Usage:
 *   fig_replication_scaling                    # tables + JSON merge
 *   fig_replication_scaling --json=PATH        # merge target
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/s3d.h"
#include "bench_util.h"
#include "sim/cluster.h"
#include "sim/harness.h"

namespace {

using namespace apo;

struct Row {
    std::size_t nodes = 0;
    sim::SkewKind skew = sim::SkewKind::kNone;
    sim::ExperimentResult result;
    double max_stall_tasks = 0.0;
    double wall_ms = 0.0;
};

double MillisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

sim::SkewModel SkewOf(sim::SkewKind kind)
{
    sim::SkewModel skew;
    skew.kind = kind;
    skew.jitter_amplitude = 0.3;
    skew.straggler_node = 0;
    skew.straggler_factor = 4.0;
    skew.burst_period_tasks = 1024;
    skew.burst_duration_tasks = 256;
    skew.burst_factor = 8.0;
    skew.burst_stagger_tasks = 128;
    return skew;
}

Row RunCell(std::size_t nodes, sim::SkewKind kind)
{
    sim::ExperimentOptions options;
    options.mode = sim::TracingMode::kAuto;
    options.iterations = 40;
    options.machine.nodes = 2;
    options.machine.gpus_per_node = 2;
    options.auto_config.min_trace_length = 10;
    options.auto_config.batchsize = 1500;
    options.auto_config.multi_scale_factor = 100;
    options.replicas = nodes;
    options.replication.seed = 7;
    options.replication.mean_latency_tasks = 120.0;
    options.replication.jitter = 0.6;
    options.skew = SkewOf(kind);
    options.log_mode = sim::LogMode::kStreaming;

    apps::S3dApplication app(
        apps::S3dOptions{.machine = options.machine});
    Row row;
    row.nodes = nodes;
    row.skew = kind;
    const auto start = std::chrono::steady_clock::now();
    row.result = sim::RunExperiment(app, options);
    row.wall_ms = MillisSince(start);
    for (const sim::NodeMetrics& node : row.result.node_metrics) {
        row.max_stall_tasks =
            std::max(row.max_stall_tasks, node.max_stall_tasks);
    }
    return row;
}

std::string SectionOf(const std::vector<Row>& rows)
{
    std::ostringstream json;
    json << "{\n"
         << "    \"bench\": \"fig_replication_scaling\",\n"
         << "    \"app\": \"s3d\", \"iterations\": 40, "
         << "\"log_mode\": \"streaming\",\n"
         << "    \"hardware_concurrency\": "
         << bench::HardwareConcurrency() << ",\n"
         << "    \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& row = rows[i];
        char buffer[640];
        // Full-precision rate plus the measured wall-clock: the
        // simulated throughput is (intentionally) nearly flat across
        // node counts, so the node-count cost lives in wall_ms.
        std::snprintf(
            buffer, sizeof buffer,
            "      {\"nodes\": %zu, \"skew\": \"%.*s\", "
            "\"iterations_per_second\": %.6f, "
            "\"wall_ms\": %.3f, "
            "\"final_slack\": %llu, \"peak_slack\": %llu, "
            "\"late_jobs\": %llu, \"jobs_coordinated\": %llu, "
            "\"max_stall_tasks\": %.0f, "
            "\"worst_node_log_peak_bytes\": %zu, "
            "\"streams_identical\": %s}%s\n",
            row.nodes,
            static_cast<int>(sim::SkewName(row.skew).size()),
            sim::SkewName(row.skew).data(),
            row.result.iterations_per_second, row.wall_ms,
            static_cast<unsigned long long>(
                row.result.coordination.final_slack),
            static_cast<unsigned long long>(
                row.result.coordination.peak_slack),
            static_cast<unsigned long long>(
                row.result.coordination.late_jobs),
            static_cast<unsigned long long>(
                row.result.coordination.jobs_coordinated),
            row.max_stall_tasks, row.result.log_peak_resident_bytes,
            row.result.streams_identical ? "true" : "false",
            i + 1 < rows.size() ? "," : "");
        json << buffer;
    }
    json << "    ]\n  }";
    return json.str();
}

// -- The execution-engine sweep (the "cluster_parallel" record) -------------

constexpr std::size_t kEngineNodes = 8;
constexpr std::size_t kEngineIterations = 50;
/** Wall-clock is min-of-N: robust against co-tenant noise. */
constexpr int kEngineRepeats = 3;

struct EngineRow {
    std::size_t jobs = 0;
    bool cache = false;
    double wall_ms = 0.0;
    sim::ExperimentResult result;
};

EngineRow RunEngineCell(std::size_t jobs, bool cache)
{
    sim::ExperimentOptions options;
    options.mode = sim::TracingMode::kAuto;
    options.iterations = kEngineIterations;
    // A mining-dominated cell — the cost the engine deduplicates and
    // parallelizes is the asynchronous mining, so the cell is shaped
    // after the issue's premise that mining dominates a replicated
    // run: a Perlmutter-node-sized machine (the ~264-task iteration
    // body gives the 8000-token windows a highly repetitive stream),
    // a long min_trace_length to keep the per-node trie lean, and the
    // tandem-repeat miner, whose window cost makes the N-fold mining
    // redundancy ~90% of serial wall-clock. The configuration is
    // recorded in the JSON so the speedup is never read out of
    // context.
    options.machine.nodes = 4;
    options.machine.gpus_per_node = 4;
    options.auto_config.min_trace_length = 100;
    options.auto_config.batchsize = 8000;
    options.auto_config.multi_scale_factor = 50;
    options.auto_config.repeats_algorithm =
        core::RepeatsAlgorithm::kTandem;
    options.replicas = kEngineNodes;
    options.replication.seed = 7;
    options.replication.mean_latency_tasks = 120.0;
    options.replication.jitter = 0.6;
    options.log_mode = sim::LogMode::kStreaming;
    options.cluster_jobs = jobs;
    options.share_mining_cache = cache;

    EngineRow row;
    row.jobs = jobs;
    row.cache = cache;
    row.wall_ms = 1e300;
    for (int rep = 0; rep < kEngineRepeats; ++rep) {
        apps::S3dApplication app(
            apps::S3dOptions{.machine = options.machine});
        const auto start = std::chrono::steady_clock::now();
        row.result = sim::RunExperiment(app, options);
        row.wall_ms = std::min(row.wall_ms, MillisSince(start));
    }
    return row;
}

/** Every engine configuration must produce the very same experiment —
 * the rows may differ in wall-clock and cache counters only. The
 * stream digest is the load-bearing check: it certifies the issued
 * streams themselves, not just coordination-level counters. */
bool EngineRowsAgree(const std::vector<EngineRow>& rows)
{
    const sim::ExperimentResult& reference = rows.front().result;
    for (const EngineRow& row : rows) {
        const sim::ExperimentResult& r = row.result;
        if (!r.streams_identical ||
            r.stream_digest != reference.stream_digest ||
            r.stream_digest_ops != reference.stream_digest_ops ||
            r.iterations_per_second != reference.iterations_per_second ||
            r.makespan_us != reference.makespan_us ||
            r.total_tasks != reference.total_tasks ||
            r.coordination.final_slack !=
                reference.coordination.final_slack ||
            r.coordination.late_jobs != reference.coordination.late_jobs) {
            std::fprintf(stderr,
                         "engine divergence at jobs=%zu cache=%d — the "
                         "parallel engine is not result-identical\n",
                         row.jobs, row.cache ? 1 : 0);
            return false;
        }
    }
    return true;
}

double HitRate(const sim::ExperimentResult& r)
{
    const double total = static_cast<double>(r.mining_cache_hits +
                                             r.mining_cache_misses);
    return total > 0.0
               ? static_cast<double>(r.mining_cache_hits) / total
               : 0.0;
}

/** Of the probes left after each window's one unavoidable first miss,
 * the fraction served from the cache (1.0 == "each window mined once,
 * every other node adopted"). */
double HitRateAfterFirstMiner(const sim::ExperimentResult& r)
{
    const double repeat_probes = static_cast<double>(
        r.mining_cache_hits +
        (r.mining_cache_misses - r.mining_cache_windows));
    return repeat_probes > 0.0
               ? static_cast<double>(r.mining_cache_hits) / repeat_probes
               : 0.0;
}

std::string EngineSectionOf(const std::vector<EngineRow>& rows,
                            double speedup_jobs4, double speedup_hw,
                            double speedup_jobs4_vs_cached)
{
    std::ostringstream json;
    char buffer[768];
    // speedup_*_vs_serial measures the whole engine (cache + fan-out)
    // against the PR-4 schedule; speedup_jobs4_vs_jobs1_cached
    // isolates the thread fan-out alone — on a single-core host it is
    // <= 1 and the vs-serial gain is entirely the mining cache's, so
    // both are recorded (with the host's hardware_concurrency) to
    // keep the attribution readable.
    std::snprintf(
        buffer, sizeof buffer,
        "{\n"
        "    \"bench\": \"fig_replication_scaling/cluster_parallel\",\n"
        "    \"app\": \"s3d\", \"nodes\": %zu, \"skew\": \"none\", "
        "\"log_mode\": \"streaming\", \"iterations\": %zu,\n"
        "    \"config\": {\"machine\": \"4x4\", \"batchsize\": 8000, "
        "\"multi_scale_factor\": 50, \"min_trace_length\": 100, "
        "\"repeats_algorithm\": \"tandem\"},\n"
        "    \"serial_baseline\": \"jobs=1, no mining cache\",\n"
        "    \"hardware_concurrency\": %u,\n"
        "    \"speedup_jobs4_vs_serial\": %.3f,\n"
        "    \"speedup_hw_vs_serial\": %.3f,\n"
        "    \"speedup_jobs4_vs_jobs1_cached\": %.3f,\n"
        "    \"rows\": [\n",
        kEngineNodes, kEngineIterations,
        bench::HardwareConcurrency(), speedup_jobs4, speedup_hw,
        speedup_jobs4_vs_cached);
    json << buffer;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const EngineRow& row = rows[i];
        std::snprintf(
            buffer, sizeof buffer,
            "      {\"jobs\": %zu, \"mining_cache\": %s, "
            "\"wall_ms\": %.3f, "
            "\"cache_hits\": %llu, \"cache_misses\": %llu, "
            "\"cache_windows\": %zu, "
            "\"hit_rate\": %.4f, \"hit_rate_after_first_miner\": %.4f, "
            "\"streams_identical\": %s, "
            "\"stream_digest\": %llu}%s\n",
            row.jobs, row.cache ? "true" : "false", row.wall_ms,
            static_cast<unsigned long long>(
                row.result.mining_cache_hits),
            static_cast<unsigned long long>(
                row.result.mining_cache_misses),
            row.result.mining_cache_windows, HitRate(row.result),
            HitRateAfterFirstMiner(row.result),
            row.result.streams_identical ? "true" : "false",
            static_cast<unsigned long long>(row.result.stream_digest),
            i + 1 < rows.size() ? "," : "");
        json << buffer;
    }
    json << "    ]\n  }";
    return json.str();
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string json_path = "BENCH_micro_repeats.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        }
    }

    const std::size_t node_counts[] = {2, 8, 64};
    const sim::SkewKind kinds[] = {
        sim::SkewKind::kNone, sim::SkewKind::kJitter,
        sim::SkewKind::kStraggler, sim::SkewKind::kInterference};

    std::printf("# replication scaling (s3d, streaming logs, "
                "40 iterations)\n");
    std::printf("%6s %-13s %12s %9s %11s %10s %10s %12s %10s\n",
                "nodes", "skew", "iters/sec", "wall_ms", "final_slck",
                "late_jobs", "max_stall", "log_peak_B", "identical");
    std::vector<Row> rows;
    for (const std::size_t nodes : node_counts) {
        for (const sim::SkewKind kind : kinds) {
            Row row = RunCell(nodes, kind);
            std::printf(
                "%6zu %-13.*s %12.4f %9.1f %11llu %10llu %10.0f "
                "%12zu %10s\n",
                row.nodes,
                static_cast<int>(sim::SkewName(kind).size()),
                sim::SkewName(kind).data(),
                row.result.iterations_per_second, row.wall_ms,
                static_cast<unsigned long long>(
                    row.result.coordination.final_slack),
                static_cast<unsigned long long>(
                    row.result.coordination.late_jobs),
                row.max_stall_tasks,
                row.result.log_peak_resident_bytes,
                row.result.streams_identical ? "yes" : "NO");
            if (!row.result.streams_identical) {
                std::fprintf(stderr,
                             "stream divergence at %zu nodes (%s)\n",
                             row.nodes,
                             std::string(sim::SkewName(kind)).c_str());
                return 1;
            }
            rows.push_back(std::move(row));
        }
    }

    // The engine sweep: serial PR-4 baseline, then the parallel
    // engine + shared mining cache at jobs {1, 4, hardware}.
    const std::size_t hw = bench::HardwareConcurrency();
    std::vector<EngineRow> engine;
    engine.push_back(RunEngineCell(1, /*cache=*/false));
    engine.push_back(RunEngineCell(1, /*cache=*/true));
    engine.push_back(RunEngineCell(4, /*cache=*/true));
    if (hw != 4) {
        engine.push_back(RunEngineCell(hw, /*cache=*/true));
    }
    if (!EngineRowsAgree(engine)) {
        return 1;
    }
    const double serial_ms = engine[0].wall_ms;
    const double speedup_jobs4 = serial_ms / engine[2].wall_ms;
    const double speedup_hw = serial_ms / engine.back().wall_ms;
    const double speedup_jobs4_vs_cached =
        engine[1].wall_ms / engine[2].wall_ms;
    std::printf("\n# cluster engine (s3d, %zu no-skew nodes, "
                "streaming logs)\n",
                kEngineNodes);
    std::printf("%6s %6s %9s %9s %12s %10s\n", "jobs", "cache",
                "wall_ms", "speedup", "hits/misses", "adopt_rate");
    for (const EngineRow& row : engine) {
        std::printf(
            "%6zu %6s %9.1f %9.2f %6llu/%-5llu %10.4f\n", row.jobs,
            row.cache ? "yes" : "no", row.wall_ms,
            serial_ms / row.wall_ms,
            static_cast<unsigned long long>(
                row.result.mining_cache_hits),
            static_cast<unsigned long long>(
                row.result.mining_cache_misses),
            HitRateAfterFirstMiner(row.result));
    }

    int rc = bench::MergeIntoJson(json_path, "replication_scaling",
                                  SectionOf(rows));
    if (rc == 0) {
        rc = bench::MergeIntoJson(
            json_path, "cluster_parallel",
            EngineSectionOf(engine, speedup_jobs4, speedup_hw,
                            speedup_jobs4_vs_cached));
    }
    if (rc == 0) {
        std::printf("merged into %s\n", json_path.c_str());
    }
    return rc;
}
