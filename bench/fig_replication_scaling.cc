/**
 * @file
 * Replication scaling sweep: node counts {2, 8, 64} under every skew
 * model, streaming logs throughout — the experiment the paper's
 * section 5.1 stops short of. For each (nodes, skew) cell the sweep
 * reports simulated steady-state throughput, wall-clock, the
 * agreed-slack trajectory endpoints, agreement misses, the worst
 * per-node stall and the worst node's resident-log high water
 * (bounded by the streaming-retire mode no matter the node count).
 *
 * A second sweep ("cluster_parallel") measures the execution engine
 * itself at 8 no-skew nodes: the serial PR-4 configuration (jobs = 1,
 * no shared mining cache) against the parallel engine with the
 * content-addressed mining cache at jobs ∈ {1, 4, hardware}. Every
 * configuration is verified to produce identical results — the rows
 * differ in wall-clock and cache hit rate only. The sweep pins
 * per-node decision engines (the thing it measures); one appended
 * shared-decision row cross-checks bit-identity against them.
 *
 * A third sweep ("decision_cost") is the shared-decision-engine
 * acceptance cell: for N ∈ {2, 8, 64, 256} no-skew nodes it times the
 * decision path in both modes — the shared core::DecisionEngine's
 * decider nanoseconds stay ~flat in N (the whole cluster decides each
 * task once) while the per-node-engine baseline's summed engine
 * nanoseconds grow ~linearly — and verifies the two modes produce
 * bit-identical streams, digests and coordination at every N.
 *
 * The results merge into BENCH_micro_repeats.json (next to the
 * finder/issue-path/oplog records) under the "replication_scaling",
 * "cluster_parallel" and "decision_cost" keys, so successive PRs keep
 * a scaling trajectory. Run micro_repeats first; this bench preserves
 * whatever else is in the file.
 *
 * Usage:
 *   fig_replication_scaling                    # tables + JSON merge
 *   fig_replication_scaling --json=PATH        # merge target
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/s3d.h"
#include "bench_util.h"
#include "sim/cluster.h"
#include "sim/harness.h"

namespace {

using namespace apo;

struct Row {
    std::size_t nodes = 0;
    sim::SkewKind skew = sim::SkewKind::kNone;
    sim::ExperimentResult result;
    double max_stall_tasks = 0.0;
    double wall_ms = 0.0;
    /** Cluster-wide decision nanoseconds per issued task (the shared
     * decider's under shared decisions — ~flat in the node count). */
    double decision_ns_per_task = 0.0;
};

/** DecisionStats::decision_ns normalized by the issued-stream length:
 * the cluster-wide cost of *deciding* each task (shared mode: the one
 * decider; per-node mode: every node's engine summed). */
double DecisionNsPerTask(const sim::ExperimentResult& result)
{
    const double tasks =
        static_cast<double>(result.frontend_stats.tasks_executed);
    return tasks > 0.0
               ? static_cast<double>(result.decision_ns) / tasks
               : 0.0;
}

double MillisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

sim::SkewModel SkewOf(sim::SkewKind kind)
{
    sim::SkewModel skew;
    skew.kind = kind;
    skew.jitter_amplitude = 0.3;
    skew.straggler_node = 0;
    skew.straggler_factor = 4.0;
    skew.burst_period_tasks = 1024;
    skew.burst_duration_tasks = 256;
    skew.burst_factor = 8.0;
    skew.burst_stagger_tasks = 128;
    return skew;
}

Row RunCell(std::size_t nodes, sim::SkewKind kind)
{
    sim::ExperimentOptions options;
    options.mode = sim::TracingMode::kAuto;
    options.iterations = 40;
    options.machine.nodes = 2;
    options.machine.gpus_per_node = 2;
    options.auto_config.min_trace_length = 10;
    options.auto_config.batchsize = 1500;
    options.auto_config.multi_scale_factor = 100;
    options.replicas = nodes;
    options.replication.seed = 7;
    options.replication.mean_latency_tasks = 120.0;
    options.replication.jitter = 0.6;
    options.skew = SkewOf(kind);
    options.log_mode = sim::LogMode::kStreaming;

    apps::S3dApplication app(
        apps::S3dOptions{.machine = options.machine});
    Row row;
    row.nodes = nodes;
    row.skew = kind;
    const auto start = std::chrono::steady_clock::now();
    row.result = sim::RunExperiment(app, options);
    row.wall_ms = MillisSince(start);
    row.decision_ns_per_task = DecisionNsPerTask(row.result);
    for (const sim::NodeMetrics& node : row.result.node_metrics) {
        row.max_stall_tasks =
            std::max(row.max_stall_tasks, node.max_stall_tasks);
    }
    return row;
}

std::string SectionOf(const std::vector<Row>& rows)
{
    std::ostringstream json;
    json << "{\n"
         << "    \"bench\": \"fig_replication_scaling\",\n"
         << "    \"app\": \"s3d\", \"iterations\": 40, "
         << "\"log_mode\": \"streaming\",\n"
         << "    " << bench::ConcurrencyJson() << ",\n"
         << "    \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& row = rows[i];
        char buffer[640];
        // Full-precision rate plus the measured wall-clock: the
        // simulated throughput is (intentionally) nearly flat across
        // node counts, so the node-count cost lives in wall_ms.
        std::snprintf(
            buffer, sizeof buffer,
            "      {\"nodes\": %zu, \"skew\": \"%.*s\", "
            "\"iterations_per_second\": %.6f, "
            "\"wall_ms\": %.3f, "
            "\"final_slack\": %llu, \"peak_slack\": %llu, "
            "\"late_jobs\": %llu, \"jobs_coordinated\": %llu, "
            "\"max_stall_tasks\": %.0f, "
            "\"worst_node_log_peak_bytes\": %zu, "
            "\"decision_ns_per_task\": %.1f, "
            "\"streams_identical\": %s}%s\n",
            row.nodes,
            static_cast<int>(sim::SkewName(row.skew).size()),
            sim::SkewName(row.skew).data(),
            row.result.iterations_per_second, row.wall_ms,
            static_cast<unsigned long long>(
                row.result.coordination.final_slack),
            static_cast<unsigned long long>(
                row.result.coordination.peak_slack),
            static_cast<unsigned long long>(
                row.result.coordination.late_jobs),
            static_cast<unsigned long long>(
                row.result.coordination.jobs_coordinated),
            row.max_stall_tasks, row.result.log_peak_resident_bytes,
            row.decision_ns_per_task,
            row.result.streams_identical ? "true" : "false",
            i + 1 < rows.size() ? "," : "");
        json << buffer;
    }
    json << "    ]\n  }";
    return json.str();
}

// -- The execution-engine sweep (the "cluster_parallel" record) -------------

constexpr std::size_t kEngineNodes = 8;
constexpr std::size_t kEngineIterations = 50;
/** Wall-clock is min-of-N: robust against co-tenant noise. */
constexpr int kEngineRepeats = 3;

struct EngineRow {
    std::size_t jobs = 0;
    bool cache = false;
    bool shared = false;  ///< shared decision engine (cross-check row)
    double wall_ms = 0.0;
    sim::ExperimentResult result;
};

EngineRow RunEngineCell(std::size_t jobs, bool cache, bool shared = false)
{
    sim::ExperimentOptions options;
    options.mode = sim::TracingMode::kAuto;
    options.iterations = kEngineIterations;
    // A mining-dominated cell — the cost the engine deduplicates and
    // parallelizes is the asynchronous mining, so the cell is shaped
    // after the issue's premise that mining dominates a replicated
    // run: a Perlmutter-node-sized machine (the ~264-task iteration
    // body gives the 8000-token windows a highly repetitive stream),
    // a long min_trace_length to keep the per-node trie lean, and the
    // tandem-repeat miner, whose window cost makes the N-fold mining
    // redundancy ~90% of serial wall-clock. The configuration is
    // recorded in the JSON so the speedup is never read out of
    // context.
    options.machine.nodes = 4;
    options.machine.gpus_per_node = 4;
    options.auto_config.min_trace_length = 100;
    options.auto_config.batchsize = 8000;
    options.auto_config.multi_scale_factor = 50;
    options.auto_config.repeats_algorithm =
        core::RepeatsAlgorithm::kTandem;
    options.replicas = kEngineNodes;
    options.replication.seed = 7;
    options.replication.mean_latency_tasks = 120.0;
    options.replication.jitter = 0.6;
    options.log_mode = sim::LogMode::kStreaming;
    options.cluster_jobs = jobs;
    options.share_mining_cache = cache;
    // This sweep measures the *per-node* engine fan-out, so the rows
    // pin per-node decisions; the one shared = true row cross-checks
    // the shared decision engine's bit-identity against them.
    options.shared_decisions = shared;

    EngineRow row;
    row.jobs = jobs;
    row.cache = cache;
    row.shared = shared;
    row.wall_ms = 1e300;
    for (int rep = 0; rep < kEngineRepeats; ++rep) {
        apps::S3dApplication app(
            apps::S3dOptions{.machine = options.machine});
        const auto start = std::chrono::steady_clock::now();
        row.result = sim::RunExperiment(app, options);
        row.wall_ms = std::min(row.wall_ms, MillisSince(start));
    }
    return row;
}

/** Every engine configuration must produce the very same experiment —
 * the rows may differ in wall-clock and cache counters only. The
 * stream digest is the load-bearing check: it certifies the issued
 * streams themselves, not just coordination-level counters. */
bool EngineRowsAgree(const std::vector<EngineRow>& rows)
{
    const sim::ExperimentResult& reference = rows.front().result;
    for (const EngineRow& row : rows) {
        const sim::ExperimentResult& r = row.result;
        if (!r.streams_identical ||
            r.stream_digest != reference.stream_digest ||
            r.stream_digest_ops != reference.stream_digest_ops ||
            r.iterations_per_second != reference.iterations_per_second ||
            r.makespan_us != reference.makespan_us ||
            r.total_tasks != reference.total_tasks ||
            r.coordination.final_slack !=
                reference.coordination.final_slack ||
            r.coordination.late_jobs != reference.coordination.late_jobs) {
            std::fprintf(stderr,
                         "engine divergence at jobs=%zu cache=%d — the "
                         "parallel engine is not result-identical\n",
                         row.jobs, row.cache ? 1 : 0);
            return false;
        }
    }
    return true;
}

double HitRate(const sim::ExperimentResult& r)
{
    const double total = static_cast<double>(r.mining_cache_hits +
                                             r.mining_cache_misses);
    return total > 0.0
               ? static_cast<double>(r.mining_cache_hits) / total
               : 0.0;
}

/** Of the probes left after each window's one unavoidable first miss,
 * the fraction served from the cache (1.0 == "each window mined once,
 * every other node adopted"). */
double HitRateAfterFirstMiner(const sim::ExperimentResult& r)
{
    const double repeat_probes = static_cast<double>(
        r.mining_cache_hits +
        (r.mining_cache_misses - r.mining_cache_windows));
    return repeat_probes > 0.0
               ? static_cast<double>(r.mining_cache_hits) / repeat_probes
               : 0.0;
}

std::string EngineSectionOf(const std::vector<EngineRow>& rows,
                            double speedup_jobs4, double speedup_hw,
                            double speedup_jobs4_vs_cached)
{
    std::ostringstream json;
    char buffer[768];
    // speedup_*_vs_serial measures the whole engine (cache + fan-out)
    // against the PR-4 schedule; speedup_jobs4_vs_jobs1_cached
    // isolates the thread fan-out alone — on a single-core host it is
    // <= 1 and the vs-serial gain is entirely the mining cache's, so
    // both are recorded (with the host's hardware_concurrency) to
    // keep the attribution readable.
    std::snprintf(
        buffer, sizeof buffer,
        "{\n"
        "    \"bench\": \"fig_replication_scaling/cluster_parallel\",\n"
        "    \"app\": \"s3d\", \"nodes\": %zu, \"skew\": \"none\", "
        "\"log_mode\": \"streaming\", \"iterations\": %zu,\n"
        "    \"config\": {\"machine\": \"4x4\", \"batchsize\": 8000, "
        "\"multi_scale_factor\": 50, \"min_trace_length\": 100, "
        "\"repeats_algorithm\": \"tandem\"},\n"
        "    \"serial_baseline\": \"jobs=1, no mining cache\",\n"
        "    %s,\n"
        "    \"speedup_jobs4_vs_serial\": %.3f,\n"
        "    \"speedup_hw_vs_serial\": %.3f,\n"
        "    \"speedup_jobs4_vs_jobs1_cached\": %.3f,\n"
        "    \"rows\": [\n",
        kEngineNodes, kEngineIterations,
        bench::ConcurrencyJson().c_str(), speedup_jobs4, speedup_hw,
        speedup_jobs4_vs_cached);
    json << buffer;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const EngineRow& row = rows[i];
        std::snprintf(
            buffer, sizeof buffer,
            "      {\"jobs\": %zu, \"mining_cache\": %s, "
            "\"shared_decisions\": %s, "
            "\"wall_ms\": %.3f, "
            "\"cache_hits\": %llu, \"cache_misses\": %llu, "
            "\"cache_windows\": %zu, "
            "\"hit_rate\": %.4f, \"hit_rate_after_first_miner\": %.4f, "
            "\"streams_identical\": %s, "
            "\"stream_digest\": %llu}%s\n",
            row.jobs, row.cache ? "true" : "false",
            row.shared ? "true" : "false", row.wall_ms,
            static_cast<unsigned long long>(
                row.result.mining_cache_hits),
            static_cast<unsigned long long>(
                row.result.mining_cache_misses),
            row.result.mining_cache_windows, HitRate(row.result),
            HitRateAfterFirstMiner(row.result),
            row.result.streams_identical ? "true" : "false",
            static_cast<unsigned long long>(row.result.stream_digest),
            i + 1 < rows.size() ? "," : "");
        json << buffer;
    }
    json << "    ]\n  }";
    return json.str();
}

// -- The decision-cost sweep (the "decision_cost" record) -------------------
//
// The shared-decision-engine acceptance cell (ISSUE 8 / ROADMAP item
// 1): one S3D stream replicated across N no-skew nodes, timed twice —
// shared decision engine on, then per-node engines — at jobs = 1 so
// every decision nanosecond is attributable. The shared decider's
// cost per issued task should be ~independent of N (the cluster
// decides each task once); the baseline's summed per-node engine cost
// grows ~linearly (every node re-decides the same stream). Both modes
// must be bit-identical in streams, digests and coordination.

constexpr std::size_t kDecisionIterations = 30;

struct DecisionRow {
    std::size_t nodes = 0;
    std::uint64_t tasks = 0;
    /** Shared mode: the decider's ns per issued task (flat in N). */
    double shared_ns_per_task = 0.0;
    /** Shared mode: node-side broadcast-apply ns per task per node. */
    double apply_ns_per_task_per_node = 0.0;
    /** Per-node mode: summed engine ns per issued task (~linear). */
    double baseline_ns_per_task = 0.0;
    bool identical = false;  ///< shared vs per-node bit-identity
};

sim::ExperimentResult RunDecisionCell(std::size_t nodes, bool shared)
{
    sim::ExperimentOptions options;
    options.mode = sim::TracingMode::kAuto;
    options.iterations = kDecisionIterations;
    options.machine.nodes = 2;
    options.machine.gpus_per_node = 2;
    options.auto_config.min_trace_length = 10;
    options.auto_config.batchsize = 1500;
    options.auto_config.multi_scale_factor = 100;
    options.replicas = nodes;
    options.replication.seed = 7;
    options.replication.mean_latency_tasks = 120.0;
    options.replication.jitter = 0.6;
    options.log_mode = sim::LogMode::kStreaming;
    options.cluster_jobs = 1;
    options.shared_decisions = shared;
    apps::S3dApplication app(
        apps::S3dOptions{.machine = options.machine});
    return sim::RunExperiment(app, options);
}

bool DecisionModesIdentical(const sim::ExperimentResult& shared,
                            const sim::ExperimentResult& baseline)
{
    return shared.streams_identical && baseline.streams_identical &&
           shared.stream_digest == baseline.stream_digest &&
           shared.stream_digest_ops == baseline.stream_digest_ops &&
           shared.candidate_digest == baseline.candidate_digest &&
           shared.iterations_per_second ==
               baseline.iterations_per_second &&
           shared.makespan_us == baseline.makespan_us &&
           shared.total_tasks == baseline.total_tasks &&
           shared.coordination.final_slack ==
               baseline.coordination.final_slack &&
           shared.coordination.peak_slack ==
               baseline.coordination.peak_slack &&
           shared.coordination.late_jobs ==
               baseline.coordination.late_jobs &&
           shared.coordination.jobs_coordinated ==
               baseline.coordination.jobs_coordinated;
}

DecisionRow RunDecisionRow(std::size_t nodes)
{
    // min-of-repeats on the internally measured decision clocks (the
    // same robustness the wall-clock rows use); identity is checked
    // on every repeat — it is exact, not statistical.
    const int repeats = nodes >= 64 ? 2 : 3;
    DecisionRow row;
    row.nodes = nodes;
    row.identical = true;
    double shared_ns = 1e300;
    double apply_ns = 1e300;
    double baseline_ns = 1e300;
    for (int rep = 0; rep < repeats; ++rep) {
        const sim::ExperimentResult shared = RunDecisionCell(nodes, true);
        const sim::ExperimentResult baseline =
            RunDecisionCell(nodes, false);
        row.tasks = shared.frontend_stats.tasks_executed;
        const double tasks = static_cast<double>(row.tasks);
        shared_ns = std::min(
            shared_ns, static_cast<double>(shared.decision_ns) / tasks);
        apply_ns = std::min(
            apply_ns, static_cast<double>(shared.decision_apply_ns) /
                          tasks / static_cast<double>(nodes));
        baseline_ns = std::min(
            baseline_ns,
            static_cast<double>(baseline.decision_ns) / tasks);
        row.identical =
            row.identical && DecisionModesIdentical(shared, baseline);
    }
    row.shared_ns_per_task = shared_ns;
    row.apply_ns_per_task_per_node = apply_ns;
    row.baseline_ns_per_task = baseline_ns;
    return row;
}

std::string DecisionSectionOf(const std::vector<DecisionRow>& rows,
                              double shared_n64_vs_n2)
{
    std::ostringstream json;
    char buffer[640];
    std::snprintf(
        buffer, sizeof buffer,
        "{\n"
        "    \"bench\": \"fig_replication_scaling/decision_cost\",\n"
        "    \"app\": \"s3d\", \"skew\": \"none\", "
        "\"log_mode\": \"streaming\", \"iterations\": %zu, "
        "\"jobs\": 1,\n"
        "    %s,\n"
        "    \"shared_n64_vs_n2_ratio\": %.3f,\n"
        "    \"rows\": [\n",
        kDecisionIterations, bench::ConcurrencyJson().c_str(),
        shared_n64_vs_n2);
    json << buffer;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const DecisionRow& row = rows[i];
        std::snprintf(
            buffer, sizeof buffer,
            "      {\"nodes\": %zu, \"tasks\": %llu, "
            "\"shared_decision_ns_per_task\": %.1f, "
            "\"apply_ns_per_task_per_node\": %.1f, "
            "\"baseline_engine_ns_per_task\": %.1f, "
            "\"baseline_over_shared_ratio\": %.2f, "
            "\"identical\": %s}%s\n",
            row.nodes, static_cast<unsigned long long>(row.tasks),
            row.shared_ns_per_task, row.apply_ns_per_task_per_node,
            row.baseline_ns_per_task,
            row.shared_ns_per_task > 0.0
                ? row.baseline_ns_per_task / row.shared_ns_per_task
                : 0.0,
            row.identical ? "true" : "false",
            i + 1 < rows.size() ? "," : "");
        json << buffer;
    }
    json << "    ]\n  }";
    return json.str();
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string json_path = "BENCH_micro_repeats.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        }
    }

    const std::size_t node_counts[] = {2, 8, 64};
    const sim::SkewKind kinds[] = {
        sim::SkewKind::kNone, sim::SkewKind::kJitter,
        sim::SkewKind::kStraggler, sim::SkewKind::kInterference};

    std::printf("# replication scaling (s3d, streaming logs, "
                "40 iterations)\n");
    std::printf("%6s %-13s %12s %9s %11s %10s %10s %12s %10s\n",
                "nodes", "skew", "iters/sec", "wall_ms", "final_slck",
                "late_jobs", "max_stall", "log_peak_B", "identical");
    std::vector<Row> rows;
    for (const std::size_t nodes : node_counts) {
        for (const sim::SkewKind kind : kinds) {
            Row row = RunCell(nodes, kind);
            std::printf(
                "%6zu %-13.*s %12.4f %9.1f %11llu %10llu %10.0f "
                "%12zu %10s\n",
                row.nodes,
                static_cast<int>(sim::SkewName(kind).size()),
                sim::SkewName(kind).data(),
                row.result.iterations_per_second, row.wall_ms,
                static_cast<unsigned long long>(
                    row.result.coordination.final_slack),
                static_cast<unsigned long long>(
                    row.result.coordination.late_jobs),
                row.max_stall_tasks,
                row.result.log_peak_resident_bytes,
                row.result.streams_identical ? "yes" : "NO");
            if (!row.result.streams_identical) {
                std::fprintf(stderr,
                             "stream divergence at %zu nodes (%s)\n",
                             row.nodes,
                             std::string(sim::SkewName(kind)).c_str());
                return 1;
            }
            rows.push_back(std::move(row));
        }
    }

    // The engine sweep: serial PR-4 baseline, then the parallel
    // engine + shared mining cache at jobs {1, 4, hardware}.
    const std::size_t hw = bench::HardwareConcurrency();
    std::vector<EngineRow> engine;
    engine.push_back(RunEngineCell(1, /*cache=*/false));
    engine.push_back(RunEngineCell(1, /*cache=*/true));
    engine.push_back(RunEngineCell(4, /*cache=*/true));
    if (hw != 4) {
        engine.push_back(RunEngineCell(hw, /*cache=*/true));
    }
    const double serial_ms = engine[0].wall_ms;
    const double speedup_jobs4 = serial_ms / engine[2].wall_ms;
    const double speedup_hw = serial_ms / engine.back().wall_ms;
    const double speedup_jobs4_vs_cached =
        engine[1].wall_ms / engine[2].wall_ms;
    // The shared-decision cross-check row rides along at the end (the
    // speedup_* members above index the per-node rows, so it must not
    // shift them): same digests, same coordination, one decider.
    engine.push_back(RunEngineCell(1, /*cache=*/true, /*shared=*/true));
    if (!EngineRowsAgree(engine)) {
        return 1;
    }
    std::printf("\n# cluster engine (s3d, %zu no-skew nodes, "
                "streaming logs)\n",
                kEngineNodes);
    std::printf("%6s %6s %7s %9s %9s %12s %10s\n", "jobs", "cache",
                "shared", "wall_ms", "speedup", "hits/misses",
                "adopt_rate");
    for (const EngineRow& row : engine) {
        std::printf(
            "%6zu %6s %7s %9.1f %9.2f %6llu/%-5llu %10.4f\n", row.jobs,
            row.cache ? "yes" : "no", row.shared ? "yes" : "no",
            row.wall_ms, serial_ms / row.wall_ms,
            static_cast<unsigned long long>(
                row.result.mining_cache_hits),
            static_cast<unsigned long long>(
                row.result.mining_cache_misses),
            HitRateAfterFirstMiner(row.result));
    }

    // The decision-cost acceptance sweep.
    const std::size_t decision_nodes[] = {2, 8, 64, 256};
    std::vector<DecisionRow> decisions;
    std::printf("\n# decision cost (s3d, no-skew, jobs=1, shared "
                "decider vs per-node engines)\n");
    std::printf("%6s %8s %14s %14s %14s %10s %10s\n", "nodes", "tasks",
                "shared_ns/task", "apply_ns/n/t", "base_ns/task",
                "base/shared", "identical");
    for (const std::size_t nodes : decision_nodes) {
        DecisionRow row = RunDecisionRow(nodes);
        std::printf("%6zu %8llu %14.1f %14.1f %14.1f %10.2f %10s\n",
                    row.nodes,
                    static_cast<unsigned long long>(row.tasks),
                    row.shared_ns_per_task,
                    row.apply_ns_per_task_per_node,
                    row.baseline_ns_per_task,
                    row.shared_ns_per_task > 0.0
                        ? row.baseline_ns_per_task / row.shared_ns_per_task
                        : 0.0,
                    row.identical ? "yes" : "NO");
        if (!row.identical) {
            std::fprintf(stderr,
                         "decision-mode divergence at %zu nodes — the "
                         "shared decision engine is not bit-identical\n",
                         nodes);
            return 1;
        }
        decisions.push_back(row);
    }
    const double shared_n64_vs_n2 =
        decisions[0].shared_ns_per_task > 0.0
            ? decisions[2].shared_ns_per_task /
                  decisions[0].shared_ns_per_task
            : 0.0;
    std::printf("shared decider ns/task, N=64 vs N=2: %.3fx\n",
                shared_n64_vs_n2);

    int rc = bench::MergeIntoJson(json_path, "replication_scaling",
                                  SectionOf(rows));
    if (rc == 0) {
        rc = bench::MergeIntoJson(
            json_path, "cluster_parallel",
            EngineSectionOf(engine, speedup_jobs4, speedup_hw,
                            speedup_jobs4_vs_cached));
    }
    if (rc == 0) {
        rc = bench::MergeIntoJson(
            json_path, "decision_cost",
            DecisionSectionOf(decisions, shared_n64_vs_n2));
    }
    if (rc == 0) {
        std::printf("merged into %s\n", json_path.c_str());
    }
    return rc;
}
