/**
 * @file
 * Ablation (section 4.3): the trace-selection scoring function.
 *
 * Two scenarios exercise the scorer's ingredients:
 *
 *  1. Switch latency (the count cap). The application starts with a
 *     40-task loop; later the loop doubles to 80 tasks whose first 40
 *     match the old body. The old trace keeps matching as a prefix,
 *     so Apophenia must *switch* to the better, longer trace. The cap
 *     bounds how large the old trace's appearance count can grow, and
 *     therefore how long the switch takes ("the capping of the
 *     appearance count allows Apophenia to eventually switch from a
 *     trace that appeared early ... to a better trace").
 *
 *  2. Steady-state stability (the decay). A rare interloper fragment
 *     appears every 23 iterations. Decaying its count between
 *     appearances keeps it from slowly accumulating rank and
 *     disrupting the established steady state ("decaying the
 *     appearance count ensures that a seemingly promising trace that
 *     occurs infrequently does not eventually hit a threshold and
 *     disrupt a steady state").
 */
#include <cstdio>

#include "api/frontend.h"
#include "core/apophenia.h"
#include "runtime/runtime.h"

namespace {

using namespace apo;

core::ApopheniaConfig BaseConfig()
{
    core::ApopheniaConfig config;
    config.min_trace_length = 10;
    config.batchsize = 2000;
    config.multi_scale_factor = 100;
    return config;
}

void IssueLoop(core::Apophenia& fe, std::vector<rt::RegionId>& regions,
               rt::TaskId base, std::size_t body)
{
    for (std::size_t i = 0; i < body; ++i) {
        fe.ExecuteTask(rt::TaskLaunch{
            base + static_cast<rt::TaskId>(i),
            {{regions[i % regions.size()], 0, rt::Privilege::kReadOnly, 0},
             {regions[(i + 1) % regions.size()], 0,
              rt::Privilege::kReadWrite, 0}}});
    }
}

/** Scenario 1: how many tasks after the loop doubles until replays of
 * the full 80-task body begin. */
std::size_t SwitchLatency(double count_cap)
{
    core::ApopheniaConfig config = BaseConfig();
    config.score_count_cap = count_cap;
    rt::Runtime runtime;
    core::Apophenia fe(runtime, config);
    std::vector<rt::RegionId> regions;
    for (int i = 0; i < 80; ++i) {
        regions.push_back(fe.CreateRegion());
    }
    for (int it = 0; it < 150; ++it) {  // phase A: 40-task body
        IssueLoop(fe, regions, 100, 40);
    }
    const std::size_t phase_b_start = runtime.Log().size();
    for (int it = 0; it < 400; ++it) {  // phase B: 80-task body,
        IssueLoop(fe, regions, 100, 40);  // same 40-task prefix
        IssueLoop(fe, regions, 500, 40);
    }
    fe.Flush();
    // First replay belonging to a trace at least 80 tasks long.
    for (std::size_t i = phase_b_start; i < runtime.Log().size(); ++i) {
        const auto& op = runtime.Log()[i];
        if (op.replay_head) {
            const auto* tmpl = runtime.Traces().Find(op.trace);
            if (tmpl != nullptr && tmpl->Length() >= 80) {
                return i - phase_b_start;
            }
        }
    }
    return runtime.Log().size() - phase_b_start;  // never switched
}

/** Scenario 2: replayed fraction of the steady tail with a rare
 * interloper, under a given decay half-life. */
double SteadyStability(double half_life)
{
    core::ApopheniaConfig config = BaseConfig();
    config.score_decay_half_life = half_life;
    rt::Runtime runtime;
    core::Apophenia fe(runtime, config);
    std::vector<rt::RegionId> regions;
    for (int i = 0; i < 60; ++i) {
        regions.push_back(fe.CreateRegion());
    }
    for (int it = 0; it < 600; ++it) {
        IssueLoop(fe, regions, 100, 40);
        if (it % 23 == 22) {
            IssueLoop(fe, regions, 9000, 30);  // rare interloper
        }
    }
    fe.Flush();
    const auto& log = runtime.Log();
    std::size_t replayed = 0;
    const std::size_t tail_start = log.size() / 2;
    for (std::size_t i = tail_start; i < log.size(); ++i) {
        replayed += log[i].mode == rt::AnalysisMode::kReplayed;
    }
    return static_cast<double>(replayed) /
           static_cast<double>(log.size() - tail_start);
}

}  // namespace

int
main()
{
    std::printf("# Ablation: scoring-function ingredients\n\n");
    std::printf("## count cap: tasks until the better (2x longer) trace"
                " takes over\n");
    std::printf("%-18s %14s\n", "cap", "switch-latency");
    for (const double cap : {4.0, 16.0, 64.0, 1e18}) {
        char name[32];
        if (cap > 1e17) {
            std::snprintf(name, sizeof name, "uncapped");
        } else {
            std::snprintf(name, sizeof name, "cap=%.0f", cap);
        }
        std::printf("%-18s %14zu\n", name, SwitchLatency(cap));
    }
    std::printf("\n## decay: steady-tail replay coverage with a rare"
                " interloper fragment\n");
    std::printf("%-18s %14s\n", "half-life", "tail-replayed");
    for (const double hl : {2000.0, 10000.0, 1e18}) {
        char name[32];
        if (hl > 1e17) {
            std::snprintf(name, sizeof name, "no-decay");
        } else {
            std::snprintf(name, sizeof name, "%.0f", hl);
        }
        std::printf("%-18s %13.1f%%\n", name, 100.0 * SteadyStability(hl));
    }
    std::printf("\n# paper: the cap lets later, better traces win;"
                " decay prevents infrequent\n# traces from slowly"
                " accumulating rank and disrupting the steady state.\n"
                "# In this implementation the replayer's structural"
                " gates (the held-match queue\n# and growing-match"
                " blocking) make steady-state selection robust across"
                " scorer\n# settings on these workloads; the scorer"
                " decides only genuine near-ties.\n");
    return 0;
}
