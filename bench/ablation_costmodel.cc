/**
 * @file
 * Ablation (section 3): sensitivity to the runtime cost model.
 *
 * The paper's model — analysis α per task, memoization α_m, replay
 * α_r ≪ α, constant c per replay — predicts where tracing pays off:
 * the benefit shrinks as α_r approaches α, and short traces stop
 * amortizing as c grows. This bench sweeps both constants on the S3D
 * skeleton and reports the auto/untraced speedup, validating that the
 * implementation responds to the model the way section 3 reasons.
 */
#include <cstdio>

#include "apps/s3d.h"
#include "bench_util.h"

namespace {

using namespace apo;

double SpeedupWith(const rt::CostModel& costs)
{
    apps::S3dOptions options;
    options.machine = bench::Perlmutter(16);
    options.size = apps::ProblemSize::kSmall;
    // Tiny kernels put the runtime firmly in the analysis-bound
    // regime, where the section 3 model's predictions are visible
    // (with the default kernel sizes execution hides a 4x change in
    // alpha_r entirely — itself a faithful prediction of the model).
    options.exec_small_us = 1200.0;

    sim::ExperimentOptions experiment;
    experiment.machine = options.machine;
    experiment.iterations = 70;
    experiment.costs = costs;
    experiment.auto_config = bench::ArtifactConfig();

    apps::S3dApplication auto_app(options);
    experiment.mode = sim::TracingMode::kAuto;
    const double traced =
        sim::RunExperiment(auto_app, experiment).iterations_per_second;
    apps::S3dApplication untraced_app(options);
    experiment.mode = sim::TracingMode::kUntraced;
    const double untraced =
        sim::RunExperiment(untraced_app, experiment).iterations_per_second;
    return traced / untraced;
}

}  // namespace

int
main()
{
    std::printf("# Ablation: cost-model sensitivity (S3D-s, 16 GPUs)\n\n");

    std::printf("## replay cost alpha_r (paper: ~100us; alpha = 1000us)\n");
    std::printf("%-14s %10s\n", "alpha_r (us)", "speedup");
    for (const double replay_us : {25.0, 100.0, 400.0, 800.0, 1000.0}) {
        rt::CostModel costs;
        costs.replay_us = replay_us;
        std::printf("%-14.0f %9.2fx\n", replay_us, SpeedupWith(costs));
    }

    std::printf("\n## per-replay constant c (paper model's amortization"
                " argument)\n");
    std::printf("%-14s %10s\n", "c (us)", "speedup");
    for (const double c : {0.0, 150.0, 2000.0, 20000.0}) {
        rt::CostModel costs;
        costs.replay_constant_us = c;
        std::printf("%-14.0f %9.2fx\n", c, SpeedupWith(costs));
    }

    std::printf("\n# expectations: speedup decays toward 1.0x as alpha_r"
                " -> alpha, and as c grows\n# past what a trace's length"
                " can amortize (the reason for min_trace_length).\n");
    return 0;
}
