#!/usr/bin/env bash
# CI entry point: tier-1 build + tests, an ASan+UBSan pass of the whole
# suite, and the finder launch-path perf record (BENCH_micro_repeats.json,
# committed so successive PRs keep a tokens/sec trajectory).
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc)"

echo "== tier-1: build + ctest (warnings are errors) =="
cmake -B build -S . -DAPO_WERROR=ON >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== sanitizers: ASan + UBSan build + ctest =="
cmake -B build-asan -S . -DAPO_SANITIZE=ON -DAPO_WERROR=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== sanitizers: TSan executor stress =="
cmake -B build-tsan -S . -DAPO_TSAN=ON -DAPO_WERROR=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j "$JOBS" --target support_executor_stress_test
ctest --test-dir build-tsan -R '^support_executor_stress_test$' --output-on-failure

echo "== perf record: finder launch path + frontend issue path =="
if [ -x build/micro_repeats ]; then
    ./build/micro_repeats --json=BENCH_micro_repeats.json
elif [ "${APO_ALLOW_NO_BENCH:-0}" = "1" ]; then
    # Local escape hatch only: without it, a missing bench binary is a
    # CI failure so the perf trajectory cannot quietly stop recording.
    echo "micro_repeats not built; skipping perf record (APO_ALLOW_NO_BENCH=1)"
else
    echo "error: micro_repeats was not built (is Google Benchmark" \
         "installed?); set APO_ALLOW_NO_BENCH=1 to skip the perf record" >&2
    exit 1
fi

echo "CI OK"
