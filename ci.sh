#!/usr/bin/env bash
# CI entry point: tier-1 build + tests, an ASan+UBSan pass of the whole
# suite, a TSan pass of the threaded/stacked suites, and the perf records
# (BENCH_micro_repeats.json, committed so successive PRs keep a
# tokens/sec + scaling trajectory).
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc)"

echo "== tier-1: build + ctest (warnings are errors) =="
cmake -B build -S . -DAPO_WERROR=ON >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== sanitizers: ASan + UBSan build + ctest =="
cmake -B build-asan -S . -DAPO_SANITIZE=ON -DAPO_WERROR=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== sanitizers: TSan executor stress + cluster simulation (parallel engine, 8 worker threads) + shared decision engine + multi-tenant service =="
cmake -B build-tsan -S . -DAPO_TSAN=ON -DAPO_WERROR=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j "$JOBS" --target support_executor_stress_test sim_cluster_test core_incremental_test core_decision_test svc_service_test svc_overload_test fault_checkpoint_test fault_membership_test
# APO_JOBS=8 forces every default-jobs cluster through the parallel
# per-node engine at >= 8 worker threads regardless of the host's core
# count, so TSan sees the real cross-thread traffic (TaskTeam barriers,
# shared mining cache, steady-state miner ring) even on small CI
# machines. core_decision_test's 64-node shared-engine case fans one
# decider's broadcast batches across the worker team.
# svc_service_test's pooled-executor case drives every tenant's mining
# jobs through one PooledExecutor racing on the shared cross-tenant
# cache. The fault_* suites run crash/checkpoint/resync through the
# parallel engine's barriers (the ASan leg already covers them via the
# full ctest above). svc_overload_test adds the watchdog's stuck-miner
# abandonment and the MiningCache waiter-release rendezvous.
APO_JOBS=8 ctest --test-dir build-tsan -R '^(support_executor_stress_test|sim_cluster_test|core_incremental_test|core_decision_test|svc_service_test|svc_overload_test|fault_checkpoint_test|fault_membership_test)$' --output-on-failure -j "$JOBS"

echo "== perf record: finder launch path + frontend issue path + digest =="
# Snapshot the committed record before the benches overwrite it: the
# regression gate below compares the fresh run against this baseline.
BENCH_BASELINE=""
if [ -f BENCH_micro_repeats.json ]; then
    BENCH_BASELINE=build/BENCH_baseline.json
    cp BENCH_micro_repeats.json "$BENCH_BASELINE"
fi
if [ -x build/micro_repeats ]; then
    ./build/micro_repeats --json=BENCH_micro_repeats.json
elif [ "${APO_ALLOW_NO_BENCH:-0}" = "1" ]; then
    # Local escape hatch only: without it, a missing bench binary is a
    # CI failure so the perf trajectory cannot quietly stop recording.
    echo "micro_repeats not built; skipping perf record (APO_ALLOW_NO_BENCH=1)"
else
    echo "error: micro_repeats was not built (is Google Benchmark" \
         "installed?); set APO_ALLOW_NO_BENCH=1 to skip the perf record" >&2
    exit 1
fi

echo "== perf record: replication scaling sweep =="
if [ -x build/fig_replication_scaling ]; then
    ./build/fig_replication_scaling --json=BENCH_micro_repeats.json
    # Both records must actually have landed in the shared JSON.
    if ! grep -q '"replication_scaling"' BENCH_micro_repeats.json; then
        echo "error: fig_replication_scaling output is missing from" \
             "BENCH_micro_repeats.json" >&2
        exit 1
    fi
    if ! grep -q '"cluster_parallel"' BENCH_micro_repeats.json; then
        echo "error: the cluster_parallel engine record is missing from" \
             "BENCH_micro_repeats.json" >&2
        exit 1
    fi
    if ! grep -q '"decision_cost"' BENCH_micro_repeats.json; then
        echo "error: the decision_cost record is missing from" \
             "BENCH_micro_repeats.json" >&2
        exit 1
    fi
elif [ "${APO_ALLOW_NO_BENCH:-0}" = "1" ]; then
    echo "fig_replication_scaling not built; skipping scaling record (APO_ALLOW_NO_BENCH=1)"
else
    echo "error: fig_replication_scaling was not built; set" \
         "APO_ALLOW_NO_BENCH=1 to skip the scaling record" >&2
    exit 1
fi

echo "== perf record: multi-tenant service sweep =="
if [ -x build/fig_multitenant ]; then
    ./build/fig_multitenant --json=BENCH_micro_repeats.json
    if ! grep -q '"fig_multitenant"' BENCH_micro_repeats.json; then
        echo "error: the fig_multitenant record is missing from" \
             "BENCH_micro_repeats.json" >&2
        exit 1
    fi
elif [ "${APO_ALLOW_NO_BENCH:-0}" = "1" ]; then
    echo "fig_multitenant not built; skipping multi-tenant record (APO_ALLOW_NO_BENCH=1)"
else
    echo "error: fig_multitenant was not built; set" \
         "APO_ALLOW_NO_BENCH=1 to skip the multi-tenant record" >&2
    exit 1
fi

echo "== perf record: overload sweep (open-loop load x policy) =="
if [ -x build/fig_overload ]; then
    # Exits nonzero if the acceptance assertions fail: policies must be
    # bit-identical at sustainable load; at 2x, kShed/kDegrade must
    # bound backlog and latency while kBlock shows the queueing cliff.
    ./build/fig_overload --json=BENCH_micro_repeats.json
    if ! grep -q '"fig_overload"' BENCH_micro_repeats.json; then
        echo "error: the fig_overload record is missing from" \
             "BENCH_micro_repeats.json" >&2
        exit 1
    fi
elif [ "${APO_ALLOW_NO_BENCH:-0}" = "1" ]; then
    echo "fig_overload not built; skipping overload record (APO_ALLOW_NO_BENCH=1)"
else
    echo "error: fig_overload was not built; set" \
         "APO_ALLOW_NO_BENCH=1 to skip the overload record" >&2
    exit 1
fi

echo "== perf record: fault-tolerance cost sweep =="
if [ -x build/fig_recovery ]; then
    # Exits nonzero if any churned run's digests diverge from the
    # failure-free baseline — recovery must never perturb the stream.
    ./build/fig_recovery --json=BENCH_micro_repeats.json
    if ! grep -q '"fig_recovery"' BENCH_micro_repeats.json; then
        echo "error: the fig_recovery record is missing from" \
             "BENCH_micro_repeats.json" >&2
        exit 1
    fi
elif [ "${APO_ALLOW_NO_BENCH:-0}" = "1" ]; then
    echo "fig_recovery not built; skipping recovery record (APO_ALLOW_NO_BENCH=1)"
else
    echo "error: fig_recovery was not built; set" \
         "APO_ALLOW_NO_BENCH=1 to skip the recovery record" >&2
    exit 1
fi

echo "== perf gate: bench_compare vs committed baseline =="
if [ -x build/bench_compare ] && [ -n "$BENCH_BASELINE" ]; then
    # The steady_state_mining and fig_multitenant records must exist
    # (exit 2, never waivable) and no tracked metric may regress >10%
    # against the committed record (exit 1; APO_ALLOW_BENCH_REGRESSION=1
    # waives a *regression* for known-noisy machines, nothing else).
    set +e
    ./build/bench_compare --baseline="$BENCH_BASELINE" \
        --current=BENCH_micro_repeats.json --threshold=0.10 \
        --require=steady_state_mining --require=fig_multitenant \
        --require=decision_cost --require=fig_recovery \
        --require=fig_overload
    compare_status=$?
    set -e
    if [ "$compare_status" -eq 1 ]; then
        if [ "${APO_ALLOW_BENCH_REGRESSION:-0}" = "1" ]; then
            echo "warning: bench regression waived (APO_ALLOW_BENCH_REGRESSION=1)"
        else
            echo "error: perf record regressed >10% against the" \
                 "committed baseline; investigate, or set" \
                 "APO_ALLOW_BENCH_REGRESSION=1 on known-noisy machines" >&2
            exit 1
        fi
    elif [ "$compare_status" -ne 0 ]; then
        echo "error: bench_compare failed (missing record or bad JSON)" >&2
        exit "$compare_status"
    fi
elif [ "${APO_ALLOW_NO_BENCH:-0}" = "1" ]; then
    echo "bench_compare gate skipped (APO_ALLOW_NO_BENCH=1)"
elif [ ! -x build/bench_compare ]; then
    echo "error: bench_compare was not built" >&2
    exit 1
else
    echo "no committed BENCH_micro_repeats.json; gate records from this run on"
fi

echo "CI OK"
