#!/usr/bin/env bash
# CI entry point: tier-1 build + tests, an ASan+UBSan pass of the whole
# suite, and the finder launch-path perf record (BENCH_micro_repeats.json,
# committed so successive PRs keep a tokens/sec trajectory).
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc)"

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== sanitizers: ASan + UBSan build + ctest =="
cmake -B build-asan -S . -DAPO_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== perf record: finder launch path =="
if [ -x build/micro_repeats ]; then
    ./build/micro_repeats --json=BENCH_micro_repeats.json
else
    # Google Benchmark not installed: the target is skipped by CMake.
    echo "micro_repeats not built; skipping perf record"
fi

echo "CI OK"
