#!/usr/bin/env bash
# CI entry point: tier-1 build + tests, an ASan+UBSan pass of the whole
# suite, a TSan pass of the threaded/stacked suites, and the perf records
# (BENCH_micro_repeats.json, committed so successive PRs keep a
# tokens/sec + scaling trajectory).
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc)"

echo "== tier-1: build + ctest (warnings are errors) =="
cmake -B build -S . -DAPO_WERROR=ON >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== sanitizers: ASan + UBSan build + ctest =="
cmake -B build-asan -S . -DAPO_SANITIZE=ON -DAPO_WERROR=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== sanitizers: TSan executor stress + cluster simulation (parallel engine, 8 worker threads) =="
cmake -B build-tsan -S . -DAPO_TSAN=ON -DAPO_WERROR=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j "$JOBS" --target support_executor_stress_test sim_cluster_test
# APO_JOBS=8 forces every default-jobs cluster through the parallel
# per-node engine at >= 8 worker threads regardless of the host's core
# count, so TSan sees the real cross-thread traffic (TaskTeam barriers,
# shared mining cache) even on small CI machines.
APO_JOBS=8 ctest --test-dir build-tsan -R '^(support_executor_stress_test|sim_cluster_test)$' --output-on-failure -j "$JOBS"

echo "== perf record: finder launch path + frontend issue path + digest =="
if [ -x build/micro_repeats ]; then
    ./build/micro_repeats --json=BENCH_micro_repeats.json
elif [ "${APO_ALLOW_NO_BENCH:-0}" = "1" ]; then
    # Local escape hatch only: without it, a missing bench binary is a
    # CI failure so the perf trajectory cannot quietly stop recording.
    echo "micro_repeats not built; skipping perf record (APO_ALLOW_NO_BENCH=1)"
else
    echo "error: micro_repeats was not built (is Google Benchmark" \
         "installed?); set APO_ALLOW_NO_BENCH=1 to skip the perf record" >&2
    exit 1
fi

echo "== perf record: replication scaling sweep =="
if [ -x build/fig_replication_scaling ]; then
    ./build/fig_replication_scaling --json=BENCH_micro_repeats.json
    # Both records must actually have landed in the shared JSON.
    if ! grep -q '"replication_scaling"' BENCH_micro_repeats.json; then
        echo "error: fig_replication_scaling output is missing from" \
             "BENCH_micro_repeats.json" >&2
        exit 1
    fi
    if ! grep -q '"cluster_parallel"' BENCH_micro_repeats.json; then
        echo "error: the cluster_parallel engine record is missing from" \
             "BENCH_micro_repeats.json" >&2
        exit 1
    fi
elif [ "${APO_ALLOW_NO_BENCH:-0}" = "1" ]; then
    echo "fig_replication_scaling not built; skipping scaling record (APO_ALLOW_NO_BENCH=1)"
else
    echo "error: fig_replication_scaling was not built; set" \
         "APO_ALLOW_NO_BENCH=1 to skip the scaling record" >&2
    exit 1
fi

echo "CI OK"
